package serve

import (
	"testing"

	"github.com/ada-repro/ada/internal/monitor"
)

func TestHitDistanceIdenticalIsZero(t *testing.T) {
	h := []uint64{5, 0, 12, 83, 1}
	if d := monitor.HitDistance(h, h); d != 0 {
		t.Errorf("HitDistance(h, h) = %v, want 0", d)
	}
}

// TestHitDistanceScaleInvariant pins the normalisation: tripling every bin
// is rate growth, not drift.
func TestHitDistanceScaleInvariant(t *testing.T) {
	a := []uint64{10, 20, 30, 40}
	b := []uint64{30, 60, 90, 120}
	if d := monitor.HitDistance(a, b); d != 0 {
		t.Errorf("HitDistance(h, 3h) = %v, want 0", d)
	}
}

// TestHitDistanceMonotoneUnderSkew moves progressively more mass from a
// uniform histogram into one bin and requires the distance to grow with it.
func TestHitDistanceMonotoneUnderSkew(t *testing.T) {
	base := []uint64{100, 100, 100, 100}
	prev := -1.0
	for _, k := range []uint64{0, 25, 50, 75, 100} {
		skew := []uint64{100 + 3*k, 100 - k, 100 - k, 100 - k}
		d := monitor.HitDistance(base, skew)
		if d <= prev {
			t.Errorf("skew %d: distance %v not above %v", k, d, prev)
		}
		prev = d
	}
	if prev > 1 {
		t.Errorf("final distance %v above 1", prev)
	}
}

func TestHitDistanceEdgeCases(t *testing.T) {
	if d := monitor.HitDistance([]uint64{1, 2}, []uint64{1, 2, 3}); d != 1 {
		t.Errorf("length mismatch = %v, want 1 (layout moved)", d)
	}
	if d := monitor.HitDistance([]uint64{0, 0}, []uint64{0, 0}); d != 0 {
		t.Errorf("both empty = %v, want 0", d)
	}
	if d := monitor.HitDistance([]uint64{0, 0}, []uint64{3, 4}); d != 1 {
		t.Errorf("one empty = %v, want 1", d)
	}
	// Disjoint support is total drift.
	if d := monitor.HitDistance([]uint64{9, 0}, []uint64{0, 4}); d != 1 {
		t.Errorf("disjoint = %v, want 1", d)
	}
}

// skewed builds a 4-bin histogram whose total-variation distance from the
// uniform [100,100,100,100] baseline is exactly k/400.
func skewed(k uint64) []uint64 {
	return []uint64{100 + k, 100 - k, 100, 100}
}

func TestDetectorFirstEvalIsFullDrift(t *testing.T) {
	d, err := NewDetector(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dist, high := d.Eval(skewed(0))
	if dist != 1 || !high {
		t.Errorf("first Eval = (%v, %v), want (1, true): no baseline means a round is wanted", dist, high)
	}
}

func TestDetectorMinSamplesHoldsLevel(t *testing.T) {
	d, err := NewDetector(DriftConfig{MinSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, high := d.Eval(skewed(100)); high {
		t.Error("signal went high on an under-sampled window")
	}
	d.Rebase(skewed(0))
	if _, high := d.Eval(skewed(100)); high {
		t.Error("signal went high on an under-sampled window after rebase")
	}
}

// TestDetectorHysteresisNoFlapping walks the drift distance through the
// Schmitt band: in-band values must never flip the signal, in either
// direction.
func TestDetectorHysteresisNoFlapping(t *testing.T) {
	// Trigger 0.15 → k=60; Rearm 0.075 → k=30; band is k in (30, 60).
	d, err := NewDetector(DriftConfig{Trigger: 0.15, Rearm: 0.075, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Rebase(skewed(0))
	for i := 0; i < 5; i++ { // oscillate inside the band while low
		if _, high := d.Eval(skewed(40)); high {
			t.Fatalf("iteration %d: in-band distance flipped a low signal high", i)
		}
		if _, high := d.Eval(skewed(55)); high {
			t.Fatalf("iteration %d: in-band distance flipped a low signal high", i)
		}
	}
	if _, high := d.Eval(skewed(80)); !high { // 0.2 ≥ trigger
		t.Fatal("above-trigger distance did not raise the signal")
	}
	for i := 0; i < 5; i++ { // oscillate inside the band while high
		if _, high := d.Eval(skewed(40)); !high {
			t.Fatalf("iteration %d: in-band distance dropped a high signal", i)
		}
		if _, high := d.Eval(skewed(35)); !high {
			t.Fatalf("iteration %d: in-band distance dropped a high signal", i)
		}
	}
	if _, high := d.Eval(skewed(10)); high { // 0.025 < rearm
		t.Fatal("below-rearm distance did not drop the signal")
	}
}

// TestDetectorSignalIsLevelNotEdge pins the property the pacer's
// suppression logic depends on: a high signal stays high across repeated
// evaluations until the drift actually subsides, so a round suppressed by
// spacing or budget still fires later.
func TestDetectorSignalIsLevelNotEdge(t *testing.T) {
	d, err := NewDetector(DriftConfig{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Rebase(skewed(0))
	for i := 0; i < 10; i++ {
		if _, high := d.Eval(skewed(100)); !high {
			t.Fatalf("evaluation %d: high signal did not hold", i)
		}
	}
	if !d.High() {
		t.Error("High() disagrees with the last Eval")
	}
}

func TestDetectorRebaseAndInvalidate(t *testing.T) {
	d, err := NewDetector(DriftConfig{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Rebase(skewed(100))
	if dist, high := d.Eval(skewed(100)); dist != 0 || high {
		t.Errorf("post-rebase Eval of the baseline = (%v, %v), want (0, false)", dist, high)
	}
	d.Invalidate()
	if dist, high := d.Eval(skewed(100)); dist != 1 || !high {
		t.Errorf("post-invalidate Eval = (%v, %v), want (1, true)", dist, high)
	}
}

func TestDetectorDisabledByHighTrigger(t *testing.T) {
	d, err := NewDetector(DriftConfig{Trigger: 2, Rearm: 1, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, high := d.Eval(skewed(100)); high {
		t.Error("trigger above 1 must never fire (fixed-cadence mode)")
	}
}

func TestDriftConfigValidation(t *testing.T) {
	bad := []DriftConfig{
		{Trigger: -0.1},
		{Trigger: 0.2, Rearm: 0.3}, // rearm above trigger
		{Trigger: 0.2, Rearm: -1},
	}
	for _, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Errorf("NewDetector(%+v) accepted an invalid config", cfg)
		}
	}
	d, err := NewDetector(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.Trigger != 0.15 || d.cfg.Rearm != 0.075 || d.cfg.MinSamples != 32 {
		t.Errorf("defaults = %+v", d.cfg)
	}
}
