package serve

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/fabric"
	"github.com/ada-repro/ada/internal/leakcheck"
)

// Both cluster backends must satisfy the pacer's seam.
var (
	_ Cluster = (*core.Registry)(nil)
	_ Cluster = (*fabric.Fabric)(nil)
)

// fakeClock is the pacer's injected time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// newTestCluster mounts one unary tenant ("sq", x² at width 10) and one
// binary tenant ("mul", x·y at width 6) on a shared 512-entry table.
func newTestCluster(t *testing.T) *core.Registry {
	t.Helper()
	reg, err := core.NewRegistry(core.SharedConfig{Name: "phys", TotalEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	ucfg := core.DefaultConfig(10)
	ucfg.CalcEntries = 64
	ucfg.LookupCacheEntries = 256 // every serve test runs the cached ingest path
	if _, err := reg.MountUnary("sq", ucfg, arith.OpSquare); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultConfig(6)
	bcfg.CalcEntries = 64
	bcfg.LookupCacheEntries = 256
	if _, err := reg.MountBinary("mul", bcfg, arith.OpMul); err != nil {
		t.Fatal(err)
	}
	return reg
}

func newTestServer(t *testing.T, clk *fakeClock, cfg Config) (*Server, *core.Registry) {
	t.Helper()
	leakcheck.Check(t)
	reg := newTestCluster(t)
	if clk != nil {
		cfg.Now = clk.now
	}
	s, err := NewServer(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

// ingestUniform pushes n uniformly distributed unary samples and drains.
func ingestUniform(t *testing.T, s *Server, tenant string, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]uint64, 64)
	for sent := 0; sent < n; sent += len(xs) {
		for i := range xs {
			xs[i] = uint64(rng.Intn(1 << 10))
		}
		if ok, err := s.Ingest(tenant, xs); err != nil || !ok {
			t.Fatalf("ingest: ok=%v err=%v", ok, err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// ingestSkewed pushes n samples confined to [lo, lo+span) and drains.
func ingestSkewed(t *testing.T, s *Server, tenant string, n int, lo, span uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(lo) + 7))
	xs := make([]uint64, 64)
	for sent := 0; sent < n; sent += len(xs) {
		for i := range xs {
			xs[i] = lo + uint64(rng.Intn(int(span)))
		}
		if ok, err := s.Ingest(tenant, xs); err != nil || !ok {
			t.Fatalf("ingest: ok=%v err=%v", ok, err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAttachDetachLifecycle(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("sq"); !errors.Is(err, ErrAttached) {
		t.Errorf("double attach = %v, want ErrAttached", err)
	}
	if err := s.Attach("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("attach unknown = %v, want ErrUnknownTenant", err)
	}
	if err := s.Detach("sq"); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach("sq"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("double detach = %v, want ErrUnknownTenant", err)
	}
	if _, err := s.Ingest("sq", []uint64{1}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("ingest after detach = %v, want ErrUnknownTenant", err)
	}
}

func TestIngestArityAndClosedErrors(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("mul"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestPairs("sq", []uint64{1}, []uint64{2}); !errors.Is(err, ErrArity) {
		t.Errorf("pairs into unary = %v, want ErrArity", err)
	}
	if _, err := s.Ingest("mul", []uint64{1}); !errors.Is(err, ErrArity) {
		t.Errorf("unary into binary = %v, want ErrArity", err)
	}
	if _, err := s.IngestPairs("mul", []uint64{1, 2}, []uint64{3}); !errors.Is(err, ErrArity) {
		t.Errorf("ragged pairs = %v, want ErrArity", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Ingest("sq", []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close = %v, want ErrClosed", err)
	}
	if err := s.Attach("sq"); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close = %v, want ErrClosed", err)
	}
}

func TestIngestCountsLookups(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	for _, name := range []string{"sq", "mul"} {
		if err := s.Attach(name); err != nil {
			t.Fatal(err)
		}
	}
	ingestUniform(t, s, "sq", 640, 1)
	xs, ys := []uint64{1, 2, 3}, []uint64{4, 5, 6}
	if ok, err := s.IngestPairs("mul", xs, ys); err != nil || !ok {
		t.Fatalf("pairs: ok=%v err=%v", ok, err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if got := snap[`ada_serve_lookups_total{tenant="sq"}`]; got != 640 {
		t.Errorf("sq lookups = %v, want 640", got)
	}
	if got := snap[`ada_serve_lookups_total{tenant="mul"}`]; got != 3 {
		t.Errorf("mul lookups = %v, want 3", got)
	}
	if got := snap[`ada_serve_batch_seconds_count`]; got != 11 {
		t.Errorf("batch histogram count = %v, want 11", got)
	}
}

// TestDriftTriggersAndConverges drives the whole adaptive loop: the first
// tick fires a round (no baseline = full drift), the loop converges to
// zero rounds under a stable distribution, and a distribution shift
// re-triggers with cause drift.
func TestDriftTriggersAndConverges(t *testing.T) {
	clk := newFakeClock()
	s, _ := newTestServer(t, clk, Config{MaxRoundStaleness: time.Hour, MinRoundSpacing: time.Millisecond})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ingestSkewed(t, s, "sq", 640, 0, 256)
	rep, err := s.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 1 {
		t.Fatalf("first tick rounds = %v, want one for sq", rep.Rounds)
	}

	// Stable traffic: the loop must stop spending rounds within a few
	// ticks (layout changes invalidate the baseline at most a few times).
	converged := false
	for i := 0; i < 8 && !converged; i++ {
		clk.advance(50 * time.Millisecond)
		ingestSkewed(t, s, "sq", 640, 0, 256)
		rep, err = s.Tick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		converged = len(rep.Rounds) == 0 && len(rep.Suppressed) == 0
	}
	if !converged {
		t.Fatalf("pacer never went quiet under a stable distribution; last report %+v", rep)
	}

	// Shift the distribution wholesale; the next adequately-spaced tick
	// must fire with cause drift.
	clk.advance(50 * time.Millisecond)
	ingestSkewed(t, s, "sq", 640, 768, 256)
	rep, err = s.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cause := rep.Rounds["sq"]; cause != CauseDrift {
		t.Fatalf("post-shift tick = %+v, want a drift round for sq", rep)
	}
	snap := s.Metrics().Snapshot()
	if snap[`ada_serve_rounds_total{cause="drift",tenant="sq"}`] == 0 {
		t.Error("drift round not counted")
	}
	if snap[`ada_serve_tcam_writes_total{tenant="sq"}`] == 0 {
		t.Error("round TCAM writes not counted")
	}
}

// TestStalenessActsAsFixedCadence disables drift (trigger above 1) and
// checks the staleness bound paces rounds like the paper's fixed cadence.
func TestStalenessActsAsFixedCadence(t *testing.T) {
	clk := newFakeClock()
	s, _ := newTestServer(t, clk, Config{
		Drift:             DriftConfig{Trigger: 2, Rearm: 1, MinSamples: 1},
		MaxRoundStaleness: time.Second,
		MinRoundSpacing:   time.Millisecond,
		ErrorSLO:          0,
	})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ingestUniform(t, s, "sq", 640, 2)

	rep, err := s.Tick(ctx) // zero lastRound: immediately stale
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds["sq"] != CauseStaleness {
		t.Fatalf("first tick = %+v, want staleness round", rep)
	}
	clk.advance(500 * time.Millisecond)
	if rep, err = s.Tick(ctx); err != nil || len(rep.Rounds) != 0 {
		t.Fatalf("tick inside staleness bound = %+v err=%v, want no rounds", rep, err)
	}
	clk.advance(600 * time.Millisecond)
	if rep, err = s.Tick(ctx); err != nil || rep.Rounds["sq"] != CauseStaleness {
		t.Fatalf("tick past staleness bound = %+v err=%v, want staleness round", rep, err)
	}
}

// TestSpacingSuppression pins MinRoundSpacing outranking a raging trigger.
func TestSpacingSuppression(t *testing.T) {
	clk := newFakeClock()
	s, _ := newTestServer(t, clk, Config{
		MaxRoundStaleness: time.Hour,
		MinRoundSpacing:   10 * time.Second,
		Drift:             DriftConfig{MinSamples: 1},
	})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ingestSkewed(t, s, "sq", 640, 0, 128)
	if rep, err := s.Tick(ctx); err != nil || len(rep.Rounds) != 1 {
		t.Fatalf("first tick = %+v err=%v", rep, err)
	}
	// Shift hard so drift is high again, but inside the spacing floor.
	clk.advance(time.Second)
	ingestSkewed(t, s, "sq", 640, 896, 128)
	rep, err := s.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suppressed["sq"] != SuppressSpacing || len(rep.Rounds) != 0 {
		t.Fatalf("tick inside spacing = %+v, want spacing suppression", rep)
	}
	// Once spacing clears, the held level fires the round (level, not edge).
	clk.advance(10 * time.Second)
	if rep, err = s.Tick(ctx); err != nil || rep.Rounds["sq"] != CauseDrift {
		t.Fatalf("tick past spacing = %+v err=%v, want drift round", rep, err)
	}
}

// TestWriteBudgetSuppressionAndSLOBypass exhausts the rolling write budget
// and checks that staleness/drift rounds are held while an SLO round still
// goes through (the budget's reserve case).
func TestWriteBudgetSuppressionAndSLOBypass(t *testing.T) {
	clk := newFakeClock()
	s, _ := newTestServer(t, clk, Config{
		Drift:             DriftConfig{Trigger: 2, Rearm: 1, MinSamples: 1},
		MaxRoundStaleness: time.Second,
		MinRoundSpacing:   time.Millisecond,
		WriteBudget:       10,
		WriteBudgetWindow: time.Hour,
	})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ingestUniform(t, s, "sq", 640, 3)

	// White-box: pretend past rounds spent the whole window and taught the
	// pacer that a round costs ~8 writes.
	s.mu.Lock()
	s.window.add(clk.now(), 10)
	ts := (*s.tenants.Load())["sq"]
	ts.costEWMA = 8
	ts.lastRound = clk.now()
	s.mu.Unlock()

	clk.advance(2 * time.Second) // stale again
	rep, err := s.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suppressed["sq"] != SuppressBudget || len(rep.Rounds) != 0 {
		t.Fatalf("tick with exhausted budget = %+v, want budget suppression", rep)
	}

	// An SLO violation bypasses the budget: width 10 with 64 entries
	// leaves real quantisation error, so any positive estimate beats an
	// SLO of ~0.
	s.mu.Lock()
	s.cfg.ErrorSLO = 1e-12
	s.mu.Unlock()
	clk.advance(2 * time.Second)
	if rep, err = s.Tick(ctx); err != nil || rep.Rounds["sq"] != CauseSLO {
		t.Fatalf("tick with SLO violated = %+v err=%v, want slo round", rep, err)
	}
	snap := s.Metrics().Snapshot()
	if snap[`ada_serve_rounds_suppressed_total{reason="budget",tenant="sq"}`] == 0 {
		t.Error("budget suppression not counted")
	}
}

func TestWriteWindowRollsOff(t *testing.T) {
	w := writeWindow{limit: 100, span: 10 * time.Second}
	t0 := time.Unix(0, 0)
	w.add(t0, 60)
	w.add(t0.Add(5*time.Second), 30)
	if got := w.remaining(t0.Add(6 * time.Second)); got != 10 {
		t.Errorf("remaining = %d, want 10", got)
	}
	// First spend expires at t0+10s.
	if got := w.remaining(t0.Add(11 * time.Second)); got != 70 {
		t.Errorf("remaining after roll-off = %d, want 70", got)
	}
	if got := w.remaining(t0.Add(16 * time.Second)); got != 100 {
		t.Errorf("remaining after full roll-off = %d, want 100", got)
	}
	unlimited := writeWindow{}
	if got := unlimited.remaining(t0); got <= 0 {
		t.Errorf("unlimited window remaining = %d", got)
	}
}

// TestDegradedModeHysteresis drives the admission drop-ratio state machine
// directly: a shed-heavy window degrades, an in-band ratio holds, a clean
// window recovers.
func TestDegradedModeHysteresis(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	ctx := context.Background()
	if s.Degraded() {
		t.Fatal("fresh server degraded")
	}
	s.winDropped.Add(60)
	s.winAccepted.Add(40)
	if _, err := s.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("60% drop ratio did not degrade")
	}
	// In-band ratio (between RecoverAt and DegradeAt): hold degraded.
	s.winDropped.Add(20)
	s.winAccepted.Add(80)
	if _, err := s.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("in-band ratio flapped out of degraded")
	}
	// Clean window: recover.
	s.winAccepted.Add(100)
	if _, err := s.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("clean window did not recover")
	}
	// Idle windows also recover a degraded server.
	s.winDropped.Add(100)
	if _, err := s.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("pure-drop window did not degrade")
	}
	if _, err := s.Tick(ctx); err != nil { // no traffic at all
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("idle window did not recover")
	}
}

// TestEnqueueShedsWhenFull pins the non-blocking admission path against a
// hand-built full shard.
func TestEnqueueShedsWhenFull(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	sh := &shard{ch: make(chan *batch, 1)}
	sh.ch <- &batch{} // no worker consumes this shard
	ts := &tenantState{
		name:     "x",
		shard:    sh,
		cDropped: s.metrics.Counter("ada_serve_dropped_batches_total", "", "tenant", "x"),
	}
	ok, err := s.enqueue(ts, s.getBatch())
	if err != nil || ok {
		t.Fatalf("enqueue into full shard = (%v, %v), want shed", ok, err)
	}
	if ts.cDropped.Value() != 1 || s.winDropped.Load() != 1 {
		t.Errorf("drop not counted: tenant=%d window=%d", ts.cDropped.Value(), s.winDropped.Load())
	}
	<-sh.ch // leave nothing behind
}

// TestServerOverFabric runs the same loop against the multi-switch
// backend, proving the Cluster seam really is backend-agnostic.
func TestServerOverFabric(t *testing.T) {
	leakcheck.Check(t)
	fab, err := fabric.New(fabric.Config{Switches: 2, SwitchEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	ucfg := core.DefaultConfig(10)
	ucfg.CalcEntries = 48
	for _, name := range []string{"a", "b", "c"} {
		if _, err := fab.AddUnary(name, ucfg, arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	clk := newFakeClock()
	s, err := NewServer(fab, Config{Now: clk.now, MaxRoundStaleness: time.Hour, MinRoundSpacing: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"a", "b", "c"} {
		if err := s.Attach(name); err != nil {
			t.Fatal(err)
		}
	}
	ingestSkewed(t, s, "a", 640, 0, 256)
	ingestSkewed(t, s, "b", 640, 512, 256)
	rep, err := s.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// a and b saw traffic (full drift, no baseline); c has no samples, so
	// MinSamples holds its drift signal low and only the from-attach
	// staleness bound (zero last-round time) gives it its first round.
	want := map[string]string{"a": CauseDrift, "b": CauseDrift, "c": CauseStaleness}
	if len(rep.Rounds) != len(want) {
		t.Fatalf("fabric tick rounds = %+v, want %+v", rep.Rounds, want)
	}
	for name, cause := range want {
		if rep.Rounds[name] != cause {
			t.Errorf("tenant %s cause = %q, want %q", name, rep.Rounds[name], cause)
		}
	}
	for name, r := range rep.Reports {
		if r.Reads == 0 {
			t.Errorf("tenant %s report has no register reads", name)
		}
	}
}
