package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as float64 bits; all
// methods are safe for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric in the Prometheus
// cumulative style: Observe is lock-free (per-bucket atomic add plus a CAS
// float accumulator for the sum) so the ingest hot path can time every
// batch without contention or allocation.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets are the default latency buckets in seconds (500ns .. ~130ms in
// ×4 steps) — sized for batch ingest latencies, not request round-trips.
var DefBuckets = []float64{
	0.0000005, 0.000002, 0.000008, 0.000032, 0.000128,
	0.000512, 0.002048, 0.008192, 0.032768, 0.131072,
}

// kind is a metric family's Prometheus type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one (labels → metric) instance inside a family.
type series struct {
	labels string // rendered `{k="v",...}` form, "" for unlabelled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // keyed by rendered labels
	order  []string           // insertion order of label keys; sorted at write
}

// Registry holds the service's metric families and renders them in the
// Prometheus text exposition format. Registration is idempotent: asking for
// an existing name+labels returns the same instance, so per-tenant series
// survive tenant churn without double-registration panics. Lookups on the
// hot path should be done once and the returned handle cached — the handle
// methods are the allocation-free part, not the registration.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders alternating key, value pairs as a deterministic
// `{k="v",...}` string (keys sorted), escaping backslashes, quotes, and
// newlines in values as the exposition format requires.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("serve: odd label key/value list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(p.v)
		fmt.Fprintf(&sb, `%s="%s"`, p.k, v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// get returns (creating if needed) the series for name+labels, enforcing
// one kind per family.
func (r *Registry) get(name, help string, k kind, kv []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("serve: invalid metric name %q", name))
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("serve: metric %q re-registered as %s (was %s)", name, k, f.kind))
	}
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		switch k {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: DefBuckets}
			h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
			s.hist = h
		}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter returns the counter for name with the given alternating label
// key/value pairs, registering it on first use.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return r.get(name, help, kindCounter, kv).ctr
}

// Gauge returns the gauge for name with the given labels.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.get(name, help, kindGauge, kv).gauge
}

// Histogram returns the histogram for name with the given labels, using
// DefBuckets.
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	return r.get(name, help, kindHistogram, kv).hist
}

// formatFloat renders a sample value the way Prometheus expects: integers
// without exponent noise, +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with its # HELP and # TYPE
// header, series in registration order. Histograms emit the cumulative
// _bucket/_sum/_count triplet.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, labels := range f.order {
			s := f.series[labels]
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.ctr.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(s.gauge.Value()))
			case kindHistogram:
				err = writeHistogram(w, f.name, labels, s.hist)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	// Re-open the label set to append le: `{a="b"}` -> `{a="b",le="x"}`.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// Snapshot returns every sample as a flat map keyed by the exposition line's
// series part (`name` or `name{k="v"}`; histograms contribute their _sum and
// _count entries) — the programmatic view tests assert against.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range r.families {
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				out[f.name+s.labels] = float64(s.ctr.Value())
			case kindGauge:
				out[f.name+s.labels] = s.gauge.Value()
			case kindHistogram:
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
			}
		}
	}
	return out
}
