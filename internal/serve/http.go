package serve

import (
	"net/http"
)

// contentType is the Prometheus text exposition format version the
// registry renders.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the server's HTTP surface:
//
//	/metrics — the metrics registry in Prometheus text format
//	/healthz — 200 "ok" while healthy, 503 "degraded" while admission
//	           control is shedding
//
// Mount it on any mux or serve it directly; it holds no per-request state.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(s.metrics))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Degraded() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("degraded\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

// MetricsHandler serves any registry in Prometheus text format — the
// standalone form for callers co-hosting several servers' registries.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", contentType)
		r.WriteText(w)
	})
}
