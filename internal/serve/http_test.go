package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	if err := s.Attach("sq"); err != nil {
		t.Fatal(err)
	}
	ingestUniform(t, s, "sq", 640, 9)
	if _, err := s.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != contentType {
		t.Errorf("content type %q, want %q", ct, contentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every documented family is present with a TYPE header, and every
	// sample line parses.
	for _, family := range []string{
		"ada_serve_lookups_total", "ada_serve_batches_total",
		"ada_serve_dropped_batches_total", "ada_serve_batch_seconds",
		"ada_serve_queue_depth", "ada_serve_rounds_total",
		"ada_serve_rounds_suppressed_total", "ada_serve_tcam_writes_total",
		"ada_serve_drift_distance", "ada_serve_error_estimate",
		"ada_serve_audits_total", "ada_serve_degraded", "ada_serve_tenants",
		"ada_serve_ticks_total", "ada_lookup_cache_hits_total",
		"ada_lookup_cache_misses_total", "ada_lookup_cache_invalidations_total",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	if !strings.Contains(text, `ada_serve_lookups_total{tenant="sq"} 640`) {
		t.Errorf("ingested lookups not visible in:\n%s", text)
	}
	// The test cluster arms the lookup cache, so the ingest above must have
	// driven live cache traffic into the exposition, not just the TYPE
	// headers. hits + misses account every calculation lookup that reached
	// the cache — at most the 640 ingested samples, less whatever the
	// intra-batch dedup fold collapsed before the probe, and never zero.
	cm := regexp.MustCompile(`ada_lookup_cache_(hits|misses)_total\{tenant="sq"\} (\d+)`)
	total := 0
	for _, m := range cm.FindAllStringSubmatch(text, -1) {
		v, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("unparseable cache counter %q", m[0])
		}
		total += v
	}
	if total == 0 || total > 640 {
		t.Errorf("cache hits+misses = %d, want (0, 640] for 640 ingested lookups in:\n%s", total, text)
	}
}

func TestHealthzFlipsWithDegradedMode(t *testing.T) {
	s, _ := newTestServer(t, nil, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}
	// Shed-heavy window → degraded → 503.
	s.winDropped.Add(100)
	if _, err := s.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get(); code != 503 || body != "degraded\n" {
		t.Fatalf("degraded /healthz = %d %q", code, body)
	}
	// Idle window recovers.
	if _, err := s.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered /healthz = %d", code)
	}
}
