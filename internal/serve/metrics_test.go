package serve

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v, want 3.5", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %v, want -1", g.Value())
	}
	h := r.Histogram("latency_seconds", "Latency.")
	h.Observe(0.000001)
	h.Observe(0.01)
	h.Observe(100) // above every bound → +Inf bucket
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if got, want := h.Sum(), 100.010001; math.Abs(got-want) > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}

	snap := r.Snapshot()
	if snap["requests_total"] != 5 {
		t.Errorf("snapshot counter = %v", snap["requests_total"])
	}
	if snap["depth"] != -1 {
		t.Errorf("snapshot gauge = %v", snap["depth"])
	}
	if snap["latency_seconds_count"] != 3 {
		t.Errorf("snapshot histogram count = %v", snap["latency_seconds_count"])
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", "tenant", "a")
	b := r.Counter("hits_total", "Hits.", "tenant", "b")
	if a == b {
		t.Fatal("different labels returned the same series")
	}
	again := r.Counter("hits_total", "Hits.", "tenant", "a")
	if a != again {
		t.Fatal("same name+labels returned a new series")
	}
	// Label order must not matter.
	x := r.Gauge("temp", "T.", "b", "2", "a", "1")
	y := r.Gauge("temp", "T.", "a", "1", "b", "2")
	if x != y {
		t.Fatal("label order produced distinct series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "A thing.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("thing", "A thing.")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

// sampleLine matches one exposition sample: name, optional labels, value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9].*|-?\.[0-9].*)$`)

func TestWriteTextExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zoo_total", "Zoo.", "animal", `ka"ng`+"\n"+`aroo\`).Add(7)
	r.Gauge("alpha", "First by sort order.").Set(2.25)
	h := r.Histogram("lat_seconds", "Latency.", "op", "eval")
	h.Observe(0.000001) // first bucket
	h.Observe(1000)     // +Inf only

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	var families []string
	var samples int
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
		samples++
	}
	// Families render sorted by name.
	for i := 1; i < len(families); i++ {
		if families[i-1] > families[i] {
			t.Errorf("families out of order: %q before %q", families[i-1], families[i])
		}
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}
	// Label escaping: quote and newline escaped, backslash doubled.
	if !strings.Contains(text, `zoo_total{animal="ka\"ng\naroo\\"} 7`) {
		t.Errorf("escaped label sample missing from:\n%s", text)
	}
	// Histogram: cumulative buckets ending at +Inf == count, plus sum/count.
	if !strings.Contains(text, `lat_seconds_bucket{op="eval",le="+Inf"} 2`) {
		t.Errorf("+Inf bucket missing or wrong in:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_count{op="eval"} 2`) {
		t.Errorf("_count missing in:\n%s", text)
	}
	assertCumulative(t, text, "lat_seconds_bucket")
}

// assertCumulative checks that a histogram's bucket values never decrease
// as le grows (the property scrapers rely on).
func assertCumulative(t *testing.T, text, prefix string) {
	t.Helper()
	prev := -1.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket series not cumulative at %q", line)
		}
		prev = v
	}
}

func TestRenderLabelsPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd key/value list did not panic")
		}
	}()
	renderLabels([]string{"k"})
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		42:          "42",
		-3:          "-3",
		2.5:         "2.5",
		math.Inf(1): "+Inf",
		0.000000125: "1.25e-07",
		1e14:        "100000000000000",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
