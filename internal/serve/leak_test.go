package serve

import (
	"testing"

	"github.com/ada-repro/ada/internal/leakcheck"
)

// TestMain backstops the whole package: a server whose shards outlive
// Close, or a test that abandons its workers, fails the run.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
