// Package serve is ADA's long-running service mode: a daemon loop that
// keeps accepting data-plane traffic while pacing control rounds by
// observed need instead of a fixed cadence.
//
// Ingest is sharded: every attached tenant is pinned to one worker shard,
// batches enqueue on a bounded per-shard queue, and the shard goroutine
// drives the system's batched hot path (ObserveEvalAll) with reused
// buffers, so steady-state ingest is allocation-free. Enqueue never blocks
// — a full queue sheds the batch and counts the drop, and a sustained drop
// ratio flips the server into degraded mode (visible on /healthz) until
// the backlog clears.
//
// The pacer (Tick) snapshots each tenant's hit registers, scores drift
// against the histogram the last committed round consumed
// (monitor.HitDistance through a Schmitt trigger), estimates the tenant's
// live relative error from the monitoring trie's leaves weighted by that
// same histogram, and decides which tenants get a control round this tick.
// Round triggers are ordered slo > drift > staleness; a minimum round
// spacing hard-suppresses, and a rolling TCAM write budget suppresses
// everything except SLO violations (the budget's reserve case). Triggered
// tenants sync through one Cluster.SyncTenants call — the externally-paced
// seam core.Registry and fabric.Fabric both implement.
//
// Every decision is counted in a Prometheus-style metrics registry served
// over HTTP (/metrics, /healthz) and available programmatically via
// Snapshot.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrUnknownTenant reports ingest or attach against a tenant name the
	// server (or its cluster) does not know.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrAttached reports a second Attach of the same tenant.
	ErrAttached = errors.New("serve: tenant already attached")
	// ErrClosed reports use of a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrArity reports unary ingest into a binary tenant or vice versa.
	ErrArity = errors.New("serve: operand arity mismatch")
)

// Round-trigger causes and suppression reasons (metric label values).
const (
	CauseDrift     = "drift"
	CauseSLO       = "slo"
	CauseStaleness = "staleness"

	SuppressSpacing = "spacing"
	SuppressBudget  = "budget"
)

// Cluster is the control-plane seam the server paces: a named-subset sync
// plus tenant lookup. core.Registry implements it directly and
// fabric.Fabric implements it switch-by-switch, so one server fronts
// either a single shared table or a whole fabric.
type Cluster interface {
	SyncTenants(ctx context.Context, names []string) (map[string]core.SyncReport, error)
	FindTenant(name string) (*core.Tenant, bool)
}

var _ Cluster = (*core.Registry)(nil)

// Config parameterises a Server. Zero fields take the stated defaults.
type Config struct {
	// Shards is the ingest worker count (default 4). Each attached tenant
	// is pinned to one shard, so a tenant's batches observe in order.
	Shards int
	// QueueDepth is the per-shard bounded queue length in batches
	// (default 64). A full queue sheds instead of blocking the caller.
	QueueDepth int
	// Drift tunes the per-tenant drift detectors.
	Drift DriftConfig
	// MinRoundSpacing is the hard floor between two control rounds of one
	// tenant (default 100ms). It outranks every trigger cause.
	MinRoundSpacing time.Duration
	// MaxRoundStaleness bounds how long a quiet tenant goes without a
	// round (default 10s; negative disables). With the drift trigger
	// disarmed (Trigger > 1) this degenerates to the paper's fixed
	// cadence — the baseline the soak benchmark compares against.
	MaxRoundStaleness time.Duration
	// ErrorSLO is the per-tenant mean relative error objective (0
	// disables). A tenant whose live error estimate exceeds it triggers a
	// round regardless of drift, and bypasses the write budget.
	ErrorSLO float64
	// WriteBudget caps TCAM row writes inside each WriteBudgetWindow (0 =
	// unlimited). Non-SLO rounds whose estimated cost does not fit the
	// window's remainder are suppressed until budget frees up.
	WriteBudget int
	// WriteBudgetWindow is the rolling budget window (default 10s).
	WriteBudgetWindow time.Duration
	// TickEvery is Run's pacer period (default 100ms).
	TickEvery time.Duration
	// DegradeAt is the per-tick ingest drop ratio that enters degraded
	// mode, RecoverAt the ratio that leaves it (defaults 0.5 and 0.05 —
	// the gap is flap hysteresis).
	DegradeAt, RecoverAt float64
	// Metrics receives the server's instruments (default: a fresh
	// registry). Share one to co-host several servers on one /metrics.
	Metrics *Registry
	// Now is the pacer's clock (default time.Now; tests inject one).
	Now func() time.Time
}

func (c *Config) normalise() error {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 1 {
		return fmt.Errorf("serve: shards %d", c.Shards)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: queue depth %d", c.QueueDepth)
	}
	if err := c.Drift.normalise(); err != nil {
		return err
	}
	if c.MinRoundSpacing == 0 {
		c.MinRoundSpacing = 100 * time.Millisecond
	}
	if c.MaxRoundStaleness == 0 {
		c.MaxRoundStaleness = 10 * time.Second
	}
	if c.ErrorSLO < 0 {
		return fmt.Errorf("serve: error SLO %v", c.ErrorSLO)
	}
	if c.WriteBudget < 0 {
		return fmt.Errorf("serve: write budget %d", c.WriteBudget)
	}
	if c.WriteBudgetWindow == 0 {
		c.WriteBudgetWindow = 10 * time.Second
	}
	if c.TickEvery == 0 {
		c.TickEvery = 100 * time.Millisecond
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = 0.5
	}
	if c.RecoverAt == 0 {
		c.RecoverAt = 0.05
	}
	if c.DegradeAt <= 0 || c.DegradeAt > 1 || c.RecoverAt < 0 || c.RecoverAt > c.DegradeAt {
		return fmt.Errorf("serve: degrade/recover thresholds %v/%v", c.DegradeAt, c.RecoverAt)
	}
	if c.Metrics == nil {
		c.Metrics = NewRegistry()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// batch is one pooled unit of ingest work.
type batch struct {
	ts *tenantState
	xs []uint64
	ys []uint64
}

// shard is one pinned ingest worker: a bounded queue plus enqueue/dequeue
// accounting (Drain waits for the two counters to meet).
type shard struct {
	ch        chan *batch
	enqueued  atomic.Uint64
	processed atomic.Uint64
	gDepth    *Gauge
}

// tenantState is the server's per-tenant record. The atomic-counter
// fields are shared with the shard workers; everything else is owned by
// the pacer (under the server's mu).
type tenantState struct {
	name   string
	tn     *core.Tenant
	binary bool
	shard  *shard

	det       *Detector
	snap      []uint64 // register snapshot; binary: X bins then Y bins
	snapY     []uint64 // Y-side scratch (binary only)
	nx        int      // X-bin count inside snap (binary only)
	lastRound time.Time
	errEst    float64
	costEWMA  float64 // smoothed TCAM writes per round (budget admission)

	// sc is the tenant's evaluation scratch. It lives on the tenant, not
	// the shard worker, because it may carry a hot-key lookup cache bound
	// to this tenant's calculation store (core.Config.LookupCacheEntries);
	// a tenant is pinned to exactly one shard goroutine, so only that
	// worker ever touches it. cacheSeen is the last cache-stat snapshot
	// pushed to the counters (delta accounting after each batch).
	sc        arith.Scratch
	cacheSeen tcam.CacheStats

	cBatches, cLookups, cMisses, cDropped *Counter
	cWrites, cDegradedRounds              *Counter
	cCacheHits, cCacheMisses, cCacheInv   *Counter
	gErr, gDist                           *Gauge
	cRounds, cSuppressed                  map[string]*Counter
	cAudit                                map[string]*Counter
}

// Server is the service-mode front end. Ingest* methods are safe for
// arbitrary concurrent use; Attach/Detach/Tick/Run/Close serialise on the
// server's internal lock.
type Server struct {
	cfg     Config
	cluster Cluster
	metrics *Registry

	mu        sync.Mutex // pacer + attach/detach state
	tenants   atomic.Pointer[map[string]*tenantState]
	shards    []*shard
	nextShard int
	window    writeWindow

	pool   sync.Pool
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	degraded    atomic.Bool
	winAccepted atomic.Uint64
	winDropped  atomic.Uint64

	hBatch              *Histogram
	gDegraded, gTenants *Gauge
	gBudgetRemaining    *Gauge
	cTicks              *Counter
	cDroppedUnknown     *Counter
}

// NewServer builds a server over cluster and starts its ingest shards.
func NewServer(cluster Cluster, cfg Config) (*Server, error) {
	if cluster == nil {
		return nil, errors.New("serve: nil cluster")
	}
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cluster: cluster,
		metrics: cfg.Metrics,
		window:  writeWindow{limit: cfg.WriteBudget, span: cfg.WriteBudgetWindow},
		done:    make(chan struct{}),
	}
	s.pool.New = func() any { return &batch{} }
	empty := make(map[string]*tenantState)
	s.tenants.Store(&empty)

	m := s.metrics
	s.hBatch = m.Histogram("ada_serve_batch_seconds", "Ingest batch processing latency.")
	s.gDegraded = m.Gauge("ada_serve_degraded", "1 while ingest is shedding in degraded mode.")
	s.gTenants = m.Gauge("ada_serve_tenants", "Attached tenants.")
	s.gBudgetRemaining = m.Gauge("ada_serve_write_budget_remaining", "TCAM writes left in the rolling budget window (-1 = unlimited.)")
	s.cTicks = m.Counter("ada_serve_ticks_total", "Pacer evaluations.")
	s.cDroppedUnknown = m.Counter("ada_serve_unknown_tenant_total", "Ingest calls naming no attached tenant.")
	if cfg.WriteBudget == 0 {
		s.gBudgetRemaining.Set(-1)
	} else {
		s.gBudgetRemaining.Set(float64(cfg.WriteBudget))
	}

	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			ch:     make(chan *batch, cfg.QueueDepth),
			gDepth: m.Gauge("ada_serve_queue_depth", "Batches queued per ingest shard.", "shard", fmt.Sprint(i)),
		}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.worker(sh)
	}
	return s, nil
}

// Metrics exposes the server's registry (for HTTP mounting or snapshots).
func (s *Server) Metrics() *Registry { return s.metrics }

// Degraded reports whether ingest is currently in degraded (shedding)
// mode. Safe for concurrent use; /healthz serves 503 while it is set.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Attach registers a cluster tenant for ingest and pacing, pinning it to
// the next shard round-robin. The tenant starts with no drift baseline and
// a zero last-round time, so its first round fires as soon as the pacer
// sees enough samples (or immediately on staleness).
func (s *Server) Attach(name string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	tn, ok := s.cluster.FindTenant(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	det, err := NewDetector(s.cfg.Drift)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.tenants.Load()
	if _, ok := old[name]; ok {
		return fmt.Errorf("%w: %q", ErrAttached, name)
	}
	m := s.metrics
	ts := &tenantState{
		name:     name,
		tn:       tn,
		binary:   tn.Binary() != nil,
		shard:    s.shards[s.nextShard%len(s.shards)],
		det:      det,
		cBatches: m.Counter("ada_serve_batches_total", "Ingest batches processed.", "tenant", name),
		cLookups: m.Counter("ada_serve_lookups_total", "Data-plane lookups served.", "tenant", name),
		cMisses:  m.Counter("ada_serve_misses_total", "Lookups that missed the calculation table.", "tenant", name),
		cDropped: m.Counter("ada_serve_dropped_batches_total", "Ingest batches shed by admission control.", "tenant", name),
		cWrites:  m.Counter("ada_serve_tcam_writes_total", "TCAM row writes issued by control rounds.", "tenant", name),
		cCacheHits: m.Counter("ada_lookup_cache_hits_total",
			"Calculation lookups served from the hot-key result cache.", "tenant", name),
		cCacheMisses: m.Counter("ada_lookup_cache_misses_total",
			"Calculation lookups forwarded to the TCAM search.", "tenant", name),
		cCacheInv: m.Counter("ada_lookup_cache_invalidations_total",
			"Wholesale cache resets on snapshot-generation changes.", "tenant", name),
		cDegradedRounds: m.Counter("ada_serve_degraded_rounds_total",
			"Control rounds that came back degraded.", "tenant", name),
		gErr:  m.Gauge("ada_serve_error_estimate", "Live mean relative error estimate.", "tenant", name),
		gDist: m.Gauge("ada_serve_drift_distance", "Hit-distribution drift vs the last round's histogram.", "tenant", name),
		cRounds: map[string]*Counter{
			CauseDrift:     m.Counter("ada_serve_rounds_total", "Control rounds triggered, by cause.", "tenant", name, "cause", CauseDrift),
			CauseSLO:       m.Counter("ada_serve_rounds_total", "Control rounds triggered, by cause.", "tenant", name, "cause", CauseSLO),
			CauseStaleness: m.Counter("ada_serve_rounds_total", "Control rounds triggered, by cause.", "tenant", name, "cause", CauseStaleness),
		},
		cSuppressed: map[string]*Counter{
			SuppressSpacing: m.Counter("ada_serve_rounds_suppressed_total", "Round triggers suppressed, by reason.", "tenant", name, "reason", SuppressSpacing),
			SuppressBudget:  m.Counter("ada_serve_rounds_suppressed_total", "Round triggers suppressed, by reason.", "tenant", name, "reason", SuppressBudget),
		},
		cAudit: map[string]*Counter{
			"clean":    m.Counter("ada_serve_audits_total", "Read-back audit verdicts.", "tenant", name, "verdict", "clean"),
			"repaired": m.Counter("ada_serve_audits_total", "Read-back audit verdicts.", "tenant", name, "verdict", "repaired"),
			"dirty":    m.Counter("ada_serve_audits_total", "Read-back audit verdicts.", "tenant", name, "verdict", "dirty"),
		},
	}
	s.nextShard++
	next := make(map[string]*tenantState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = ts
	s.tenants.Store(&next)
	s.gTenants.Set(float64(len(next)))
	return nil
}

// Detach removes a tenant from ingest and pacing. In-flight batches still
// drain through its system; subsequent Ingest calls get ErrUnknownTenant.
// The tenant's metric series survive (counters are cumulative).
func (s *Server) Detach(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.tenants.Load()
	if _, ok := old[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	next := make(map[string]*tenantState, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	s.tenants.Store(&next)
	s.gTenants.Set(float64(len(next)))
	return nil
}

// getBatch and putBatch recycle batch carriers; put clears the tenant
// pointer so a pooled batch never pins a detached tenant's state.
func (s *Server) getBatch() *batch { return s.pool.Get().(*batch) }

func (s *Server) putBatch(b *batch) {
	b.ts = nil
	s.pool.Put(b)
}

// Ingest offers one unary operand batch. It copies xs into a pooled
// carrier and enqueues without blocking: false means the shard queue was
// full and the batch was shed (admission control), an error means the
// tenant is unknown, of the wrong arity, or the server is closed. The
// happy path allocates nothing in steady state.
func (s *Server) Ingest(tenantName string, xs []uint64) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	ts, ok := (*s.tenants.Load())[tenantName]
	if !ok {
		s.cDroppedUnknown.Inc()
		return false, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	if ts.binary {
		return false, fmt.Errorf("%w: %q is binary, use IngestPairs", ErrArity, tenantName)
	}
	b := s.getBatch()
	b.ts = ts
	b.xs = append(b.xs[:0], xs...)
	return s.enqueue(ts, b)
}

// IngestPairs offers one binary operand-pair batch (xs[i] with ys[i]).
func (s *Server) IngestPairs(tenantName string, xs, ys []uint64) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	if len(xs) != len(ys) {
		return false, fmt.Errorf("%w: %d xs vs %d ys", ErrArity, len(xs), len(ys))
	}
	ts, ok := (*s.tenants.Load())[tenantName]
	if !ok {
		s.cDroppedUnknown.Inc()
		return false, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	if !ts.binary {
		return false, fmt.Errorf("%w: %q is unary, use Ingest", ErrArity, tenantName)
	}
	b := s.getBatch()
	b.ts = ts
	b.xs = append(b.xs[:0], xs...)
	b.ys = append(b.ys[:0], ys...)
	return s.enqueue(ts, b)
}

func (s *Server) enqueue(ts *tenantState, b *batch) (bool, error) {
	select {
	case ts.shard.ch <- b:
		ts.shard.enqueued.Add(1)
		s.winAccepted.Add(1)
		return true, nil
	default:
		s.putBatch(b)
		ts.cDropped.Inc()
		s.winDropped.Add(1)
		return false, nil
	}
}

// worker is one shard's pinned goroutine: it owns a result buffer, and
// each batch evaluates through its tenant's own scratch (and lookup cache,
// when armed), so every batch runs the system's allocation-free hot path.
// On Close it drains what is already queued, then exits.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	var dst []uint64
	process := func(b *batch) {
		start := time.Now()
		var misses int
		n := len(b.xs)
		if b.ts.binary {
			dst, misses = b.ts.tn.Binary().ObserveEvalAll(dst, b.xs, b.ys, &b.ts.sc)
		} else {
			dst, misses = b.ts.tn.Unary().ObserveEvalAll(dst, b.xs, &b.ts.sc)
		}
		b.ts.cBatches.Inc()
		b.ts.cLookups.Add(uint64(n))
		if misses > 0 {
			b.ts.cMisses.Add(uint64(misses))
		}
		if st := b.ts.sc.CacheStats(); st != b.ts.cacheSeen {
			b.ts.cCacheHits.Add(st.Hits - b.ts.cacheSeen.Hits)
			b.ts.cCacheMisses.Add(st.Misses - b.ts.cacheSeen.Misses)
			b.ts.cCacheInv.Add(st.Invalidations - b.ts.cacheSeen.Invalidations)
			b.ts.cacheSeen = st
		}
		s.hBatch.Observe(time.Since(start).Seconds())
		s.putBatch(b)
		sh.processed.Add(1)
	}
	for {
		select {
		case <-s.done:
			for {
				select {
				case b := <-sh.ch:
					process(b)
				default:
					return
				}
			}
		case b := <-sh.ch:
			process(b)
		}
	}
}

// Drain blocks until every enqueued batch has been processed (or ctx
// ends). Benchmarks call it between the load phase and measurement so
// queue depth never skews a reading.
func (s *Server) Drain(ctx context.Context) error {
	for {
		idle := true
		for _, sh := range s.shards {
			if sh.processed.Load() != sh.enqueued.Load() {
				idle = false
				break
			}
		}
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// TickReport summarises one pacer evaluation.
type TickReport struct {
	// Tenants is the attached-tenant count evaluated.
	Tenants int
	// Rounds maps each synced tenant to its trigger cause.
	Rounds map[string]string
	// Suppressed maps each wanted-but-denied tenant to the reason.
	Suppressed map[string]string
	// Reports carries the control-round reports of the synced tenants.
	Reports map[string]core.SyncReport
}

// Tick runs one pacer evaluation: refresh admission state, score every
// tenant's drift and error, arbitrate triggers against spacing and the
// write budget, and sync the chosen subset in one Cluster call. Run calls
// it on a timer; tests and benchmarks call it directly with their own
// clock.
func (s *Server) Tick(ctx context.Context) (TickReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cTicks.Inc()
	s.refreshAdmissionLocked()
	now := s.cfg.Now()

	tenants := *s.tenants.Load()
	rep := TickReport{
		Tenants:    len(tenants),
		Rounds:     make(map[string]string),
		Suppressed: make(map[string]string),
	}
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic arbitration order

	var due []string
	for _, name := range names {
		ts := tenants[name]
		s.observeTenantLocked(ts)
		cause := s.triggerCauseLocked(ts, now)
		if cause == "" {
			continue
		}
		if now.Sub(ts.lastRound) < s.cfg.MinRoundSpacing {
			ts.cSuppressed[SuppressSpacing].Inc()
			rep.Suppressed[name] = SuppressSpacing
			continue
		}
		if cause != CauseSLO && s.cfg.WriteBudget > 0 {
			if est := int(ts.costEWMA + 0.5); est > s.window.remaining(now) {
				ts.cSuppressed[SuppressBudget].Inc()
				rep.Suppressed[name] = SuppressBudget
				continue
			}
		}
		rep.Rounds[name] = cause
		due = append(due, name)
	}
	if len(due) > 0 {
		reports, err := s.cluster.SyncTenants(ctx, due)
		if err != nil {
			return rep, err
		}
		rep.Reports = reports
		for _, name := range due {
			s.settleRoundLocked(tenants[name], now, rep.Rounds[name], reports[name])
		}
	}
	if s.cfg.WriteBudget > 0 {
		s.gBudgetRemaining.Set(float64(s.window.remaining(now)))
	}
	return rep, nil
}

// observeTenantLocked refreshes one tenant's drift and error instruments
// from a fresh register snapshot.
func (s *Server) observeTenantLocked(ts *tenantState) {
	if ts.binary {
		b := ts.tn.Binary()
		monX, monY := b.ControllerX().Monitor(), b.ControllerY().Monitor()
		nx := monX.NumBins()
		ts.snapY = monY.SnapshotInto(sizeUint64(ts.snapY, monY.NumBins()))
		ts.snap = monX.SnapshotInto(sizeUint64(ts.snap, nx))
		ts.nx = nx
		ts.snap = append(ts.snap, ts.snapY...)
	} else {
		mon := ts.tn.Unary().Controller().Monitor()
		ts.snap = mon.SnapshotInto(sizeUint64(ts.snap, mon.NumBins()))
	}
	dist, _ := ts.det.Eval(ts.snap)
	ts.gDist.Set(dist)
	ts.errEst = estimateError(ts)
	ts.gErr.Set(ts.errEst)
}

// triggerCauseLocked returns why ts wants a round this tick ("" = it does
// not). Precedence: SLO violation, then drift, then staleness — the order
// matters because SLO-caused rounds bypass the write budget.
func (s *Server) triggerCauseLocked(ts *tenantState, now time.Time) string {
	if s.cfg.ErrorSLO > 0 && ts.errEst > s.cfg.ErrorSLO {
		return CauseSLO
	}
	if ts.det.High() {
		return CauseDrift
	}
	if s.cfg.MaxRoundStaleness > 0 && now.Sub(ts.lastRound) >= s.cfg.MaxRoundStaleness {
		return CauseStaleness
	}
	return ""
}

// settleRoundLocked folds one committed round into the tenant's pacer
// state: budget spend, cost smoothing, audit verdicts, and the drift
// baseline (rebased to the histogram this round consumed, or invalidated
// when the round moved the monitoring layout).
func (s *Server) settleRoundLocked(ts *tenantState, now time.Time, cause string, rep core.SyncReport) {
	ts.lastRound = now
	ts.cRounds[cause].Inc()
	ts.cWrites.Add(uint64(rep.TCAMWrites))
	s.window.add(now, rep.TCAMWrites)
	if ts.costEWMA == 0 {
		ts.costEWMA = float64(rep.TCAMWrites)
	} else {
		ts.costEWMA = 0.7*ts.costEWMA + 0.3*float64(rep.TCAMWrites)
	}
	if rep.AuditRan {
		switch {
		case rep.Audit.Mismatched() == 0:
			ts.cAudit["clean"].Inc()
		case rep.Audit.Repaired:
			ts.cAudit["repaired"].Inc()
		default:
			ts.cAudit["dirty"].Inc()
		}
	}
	if rep.Degraded {
		// The round did not commit: keep the baseline so the drift level
		// stays high and the retry fires once spacing allows.
		ts.cDegradedRounds.Inc()
		return
	}
	if rep.Expanded {
		// The bin count changed: the consumed histogram no longer describes
		// the new layout, so start over. (Rebalances alone keep the count —
		// the rebased baseline is then only boundary-shifted, which the next
		// committed round corrects; invalidating on every rebalance would
		// re-trigger forever when Algorithm 2 oscillates around a stationary
		// distribution.)
		ts.det.Invalidate()
	} else {
		ts.det.Rebase(ts.snap)
	}
}

// refreshAdmissionLocked publishes queue depths and runs the degraded-mode
// hysteresis over the drop ratio of the window since the previous tick.
func (s *Server) refreshAdmissionLocked() {
	for _, sh := range s.shards {
		sh.gDepth.Set(float64(len(sh.ch)))
	}
	acc, drp := s.winAccepted.Swap(0), s.winDropped.Swap(0)
	total := acc + drp
	if total == 0 {
		// No ingest attempts since the last tick: nothing is being shed,
		// so an idle server must not stay stuck in degraded mode.
		if s.degraded.Load() {
			s.degraded.Store(false)
			s.gDegraded.Set(0)
		}
		return
	}
	ratio := float64(drp) / float64(total)
	if !s.degraded.Load() && ratio >= s.cfg.DegradeAt {
		s.degraded.Store(true)
		s.gDegraded.Set(1)
	} else if s.degraded.Load() && ratio < s.cfg.RecoverAt {
		s.degraded.Store(false)
		s.gDegraded.Set(0)
	}
}

// Run drives Tick on the configured period until ctx ends (returning
// ctx.Err()) or a tick fails.
func (s *Server) Run(ctx context.Context) error {
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := s.Tick(ctx); err != nil {
				return err
			}
		}
	}
}

// Close stops the ingest shards after draining already-queued batches and
// waits for them to exit. Idempotent; Ingest after Close returns
// ErrClosed.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	s.wg.Wait()
}

// estimateError is the pacer's live accuracy probe: evaluate the
// calculation engine at each monitoring bin's midpoint against the exact
// operation, and weight each bin's relative error by its share of the
// current hit histogram. The estimate therefore tracks the traffic — a
// population that was accurate for last round's distribution scores badly
// once the mass moves to bins it resolves coarsely.
func estimateError(ts *tenantState) float64 {
	if ts.binary {
		return estimateBinaryError(ts)
	}
	sys := ts.tn.Unary()
	ps := sys.Controller().Monitor().Prefixes()
	if len(ps) != len(ts.snap) {
		return ts.errEst // layout moved under us; keep the last estimate
	}
	f := sys.Op().Func()
	var num, den float64
	for i, p := range ps {
		w := float64(ts.snap[i])
		if w == 0 {
			continue
		}
		x := p.Midpoint()
		approx, err := sys.Engine().Eval(x)
		if err != nil {
			continue
		}
		num += w * relErr(approx, f(x))
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// estimateBinaryError crosses the two operand histograms: each (x bin, y
// bin) pair is weighted by the product of its marginal hit masses (the
// operands are observed independently, so the product is the best joint
// estimate the registers can give).
func estimateBinaryError(ts *tenantState) float64 {
	sys := ts.tn.Binary()
	psX := sys.ControllerX().Monitor().Prefixes()
	psY := sys.ControllerY().Monitor().Prefixes()
	if len(psX) != ts.nx || len(psX)+len(psY) != len(ts.snap) {
		return ts.errEst
	}
	hx, hy := ts.snap[:ts.nx], ts.snap[ts.nx:]
	f := sys.Op().Func()
	var num, den float64
	for i, px := range psX {
		wx := float64(hx[i])
		if wx == 0 {
			continue
		}
		x := px.Midpoint()
		for j, py := range psY {
			wy := float64(hy[j])
			if wy == 0 {
				continue
			}
			y := py.Midpoint()
			approx, err := sys.Engine().Eval(x, y)
			if err != nil {
				continue
			}
			w := wx * wy
			num += w * relErr(approx, f(x, y))
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// relErr is the benchmark suite's relative-error convention:
// |approx − exact| / max(exact, 1).
func relErr(approx, exact uint64) float64 {
	var diff float64
	if approx > exact {
		diff = float64(approx - exact)
	} else {
		diff = float64(exact - approx)
	}
	return diff / math.Max(float64(exact), 1)
}

// sizeUint64 returns dst resized to n, reusing its array when possible.
func sizeUint64(dst []uint64, n int) []uint64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint64, n)
}

// writeWindow is the rolling TCAM write budget: spends are timestamped and
// expire once they fall out of the window, so the budget refills
// continuously instead of in cliff-edge epochs. Owned by the pacer.
type writeWindow struct {
	limit  int
	span   time.Duration
	events []writeEvent
	spent  int
}

type writeEvent struct {
	at time.Time
	n  int
}

func (w *writeWindow) add(now time.Time, n int) {
	if w.limit == 0 || n == 0 {
		return
	}
	w.events = append(w.events, writeEvent{at: now, n: n})
	w.spent += n
}

func (w *writeWindow) remaining(now time.Time) int {
	if w.limit == 0 {
		return math.MaxInt
	}
	cut := now.Add(-w.span)
	i := 0
	for i < len(w.events) && !w.events[i].at.After(cut) {
		w.spent -= w.events[i].n
		i++
	}
	if i > 0 {
		w.events = append(w.events[:0], w.events[i:]...)
	}
	if r := w.limit - w.spent; r > 0 {
		return r
	}
	return 0
}
