//go:build race

package fabric

// raceDetectorEnabled reports whether the race detector is instrumenting
// this test binary; its runtime charges bookkeeping allocations, so
// allocation assertions relax under it.
const raceDetectorEnabled = true
