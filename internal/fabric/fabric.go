package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/tenant"
)

// Config parameterises a Fabric: N switches, each a core.Registry over its
// own physical calculation TCAM, plus the fabric-level control scheduler and
// migration policy.
type Config struct {
	// Switches is the number of simulated switches (one Registry each).
	Switches int
	// SwitchEntries is the physical calculation-table capacity per switch.
	SwitchEntries int
	// OperandWidths are each switch partition's physical operand widths
	// (default [16, 16]).
	OperandWidths []int
	// TenantIDBits sizes each partition's tenant discriminator (default 8).
	TenantIDBits int
	// Workers bounds the control-round worker pool: at most this many
	// switch rounds run concurrently in one SyncAll (default 4). Rounds for
	// different switches overlap — the pool is the only serialisation.
	Workers int
	// RoundDeadline bounds each switch round's modelled delay. It is plumbed
	// into every mounted tenant's RetryPolicy.RoundDeadline (controllers
	// degrade with ReasonDeadline past it), and a switch whose aggregated
	// round delay exceeds it is flagged DeadlineExceeded in the round report.
	// 0 = no deadline.
	RoundDeadline time.Duration
	// VNodes is the consistent-hash points per switch (default 16).
	VNodes int
	// TenantArbiter tunes each switch's local elastic budget arbiter.
	// Every <= 0 keeps per-switch quotas static (the static baseline).
	TenantArbiter tenant.ArbiterConfig
	// Migration tunes the fabric-level arbiter that moves tenants between
	// switches. Every <= 0 disables migrations (static placement).
	Migration MigrationConfig
	// WrapDriver, when set, wraps each tenant controller's switch driver
	// with the switch index — the hook internal/faults uses to aim
	// partitions and outages at individual switches.
	WrapDriver func(sw int, d controlplane.Driver) controlplane.Driver
}

func (c *Config) normalise() error {
	if c.Switches < 1 {
		return fmt.Errorf("fabric: need >= 1 switch, got %d", c.Switches)
	}
	if c.SwitchEntries < 1 {
		return fmt.Errorf("fabric: switch entries %d", c.SwitchEntries)
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.VNodes < 1 {
		c.VNodes = 16
	}
	return nil
}

// Tenant is one fabric-resident tenant: a dense index (the packed-sample
// namespace), its current home switch, and the live core.Tenant handle.
// Routing fields (sw, t) are guarded by the fabric lock; the rest is
// immutable after AddUnary.
type Tenant struct {
	idx  int
	name string
	op   arith.UnaryOp
	cfg  core.Config // mount template; CalcEntries tracks the latest grant

	sw int
	t  *core.Tenant
}

// Name returns the tenant's fabric-wide name.
func (ft *Tenant) Name() string { return ft.name }

// Index returns the tenant's dense index (the high half of packed samples).
func (ft *Tenant) Index() int { return ft.idx }

// Fabric is the sharded multi-switch deployment: per-switch registries, the
// consistent-hash placement ring, the packed-sample ingest path, the
// concurrent round scheduler, and the migration arbiter.
type Fabric struct {
	cfg  Config
	ring *Ring
	regs []*core.Registry

	mu      sync.RWMutex // guards tenants' routing fields + byName
	tenants []*Tenant
	byName  map[string]*Tenant

	round int // completed SyncAll rounds
}

// New builds the fabric: Switches registries, each over its own physical
// table, and the placement ring.
func New(cfg Config) (*Fabric, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Switches, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:    cfg,
		ring:   ring,
		regs:   make([]*core.Registry, cfg.Switches),
		byName: make(map[string]*Tenant),
	}
	for i := range f.regs {
		reg, err := core.NewRegistry(core.SharedConfig{
			Name:          fmt.Sprintf("fabric.sw%02d", i),
			TotalEntries:  cfg.SwitchEntries,
			OperandWidths: cfg.OperandWidths,
			TenantIDBits:  cfg.TenantIDBits,
			Arbiter:       cfg.TenantArbiter,
		})
		if err != nil {
			return nil, err
		}
		f.regs[i] = reg
	}
	return f, nil
}

// mountConfig specialises a tenant config for one switch: the per-switch
// driver wrap and the fabric round deadline.
func (f *Fabric) mountConfig(sw int, cfg core.Config) core.Config {
	userWrap := cfg.WrapDriver
	fabWrap := f.cfg.WrapDriver
	if fabWrap != nil || userWrap != nil {
		cfg.WrapDriver = func(d controlplane.Driver) controlplane.Driver {
			if userWrap != nil {
				d = userWrap(d)
			}
			if fabWrap != nil {
				d = fabWrap(sw, d)
			}
			return d
		}
	}
	if f.cfg.RoundDeadline > 0 && cfg.Retry.RoundDeadline == 0 {
		cfg.Retry.RoundDeadline = f.cfg.RoundDeadline
	}
	return cfg
}

// AddUnary places the tenant on the ring and mounts it there with
// cfg.CalcEntries initial budget. Returns the home switch index.
func (f *Fabric) AddUnary(name string, cfg core.Config, op arith.UnaryOp) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byName[name]; dup {
		return 0, fmt.Errorf("fabric: duplicate tenant %q", name)
	}
	sw := f.ring.Place(name)
	t, err := f.regs[sw].MountUnary(name, f.mountConfig(sw, cfg), op)
	if err != nil {
		return 0, fmt.Errorf("fabric: mount %q on switch %d: %w", name, sw, err)
	}
	ft := &Tenant{idx: len(f.tenants), name: name, op: op, cfg: cfg, sw: sw, t: t}
	f.tenants = append(f.tenants, ft)
	f.byName[name] = ft
	return sw, nil
}

// NumSwitches returns the switch count.
func (f *Fabric) NumSwitches() int { return len(f.regs) }

// NumTenants returns the tenant count.
func (f *Fabric) NumTenants() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.tenants)
}

// Registry exposes switch sw's registry (fault attachment, inspection).
func (f *Fabric) Registry(sw int) *core.Registry { return f.regs[sw] }

// Tenant returns the live core handle and home switch for a tenant name.
func (f *Fabric) Tenant(name string) (*core.Tenant, int, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ft, ok := f.byName[name]
	if !ok {
		return nil, 0, false
	}
	return ft.t, ft.sw, true
}

// RouteSnapshot appends each tenant's current home switch, indexed by dense
// tenant index, reusing dst. Replay workers route packed samples with it;
// a snapshot taken before a migration stays safe — the fabric dispatches by
// tenant handle, so stale-routed samples still reach the tenant's live home.
func (f *Fabric) RouteSnapshot(dst []int) []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	dst = dst[:0]
	for _, ft := range f.tenants {
		dst = append(dst, ft.sw)
	}
	return dst
}

// Pack encodes a tenant-index/operand pair as one packed sample.
func Pack(tidx int, v uint64) uint64 { return uint64(tidx)<<32 | (v & 0xffffffff) }

// IngestScratch is caller-owned scratch for ObserveEvalPacked: per-tenant
// regroup buffers, the shared eval output buffer, and per-tenant engine
// scratches. The engine scratch is per tenant, not shared, because each
// tenant's Scratch may carry a hot-key lookup cache bound to that tenant's
// store (core.Config.LookupCacheEntries) — a shared one would rebind cold
// on every tenant switch. One IngestScratch per replay worker keeps the
// steady-state ingest path allocation-free.
type IngestScratch struct {
	xs    [][]uint64 // per dense tenant index
	order []int      // tenant indices touched by the current batch
	dst   []uint64
	scs   []arith.Scratch // per dense tenant index
}

// ObserveEvalPacked ingests one batch of packed samples (tidx<<32|operand):
// regroups by tenant, then per tenant observes the operands into its
// monitors and evaluates them through its calculation engine — the PR 5
// data-plane hot path. Returns the batch's total lookup misses. If fn is
// non-nil it receives each tenant group's operands and approximate outputs
// (valid only during the call) — the benchmark's error-measurement hook.
func (f *Fabric) ObserveEvalPacked(batch []uint64, sc *IngestScratch, fn func(tidx int, xs, approx []uint64)) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if n := len(f.tenants); len(sc.xs) < n {
		sc.xs = append(sc.xs, make([][]uint64, n-len(sc.xs))...)
	}
	if n := len(f.tenants); len(sc.scs) < n {
		sc.scs = append(sc.scs, make([]arith.Scratch, n-len(sc.scs))...)
	}
	sc.order = sc.order[:0]
	for _, p := range batch {
		tidx := int(p >> 32)
		if tidx >= len(f.tenants) {
			continue // sample for a tenant this fabric doesn't know
		}
		if len(sc.xs[tidx]) == 0 {
			sc.order = append(sc.order, tidx)
		}
		sc.xs[tidx] = append(sc.xs[tidx], p&0xffffffff)
	}
	misses := 0
	for _, tidx := range sc.order {
		xs := sc.xs[tidx]
		dst, m := f.tenants[tidx].t.Unary().ObserveEvalAll(sc.dst[:0], xs, &sc.scs[tidx])
		sc.dst = dst[:0]
		misses += m
		if fn != nil {
			fn(tidx, xs, dst)
		}
		sc.xs[tidx] = xs[:0]
	}
	return misses
}

// SwitchRound is one switch's slice of a fabric round.
type SwitchRound struct {
	// Switch is the switch index.
	Switch int
	// Tenants is the tenant count at round time.
	Tenants int
	// Delay is the switch round's modelled convergence delay: the max over
	// its tenant rounds, which run concurrently inside the registry.
	Delay time.Duration
	// Degraded counts tenant rounds that aborted on driver failure.
	Degraded int
	// DeadlineExceeded reports Delay above the fabric RoundDeadline.
	DeadlineExceeded bool
	// Writes sums register resets and TCAM entries written.
	Writes int
	// Err is a non-degrade round failure (empty = ok).
	Err string
	// Arbiter is the switch-local budget arbiter's verdict.
	Arbiter tenant.Report
}

// Round is one fabric-wide control round: every occupied switch's round run
// on the worker pool, plus any migrations the fabric arbiter decided.
type Round struct {
	// Seq is the 1-based fabric round number.
	Seq int
	// Switches holds per-switch results, indexed by switch.
	Switches []SwitchRound
	// MaxDelay is the fabric round's modelled makespan given the worker
	// pool: switch delays are scheduled LPT onto Workers lanes and the
	// longest lane is the round's wall-model.
	MaxDelay time.Duration
	// Migrations lists tenant moves performed after the switch rounds.
	Migrations []Migration
}

// SyncAll runs one control round on every occupied switch concurrently,
// bounded by cfg.Workers, then — on the migration cadence — lets the fabric
// arbiter move tenants. Rounds for different switches overlap: the worker
// pool is the only serialisation between them. Driver failures surface as
// per-tenant degrades inside SwitchRound, not errors.
func (f *Fabric) SyncAll(ctx context.Context) (Round, error) {
	f.mu.RLock()
	occupied := make([]int, 0, len(f.regs))
	counts := make([]int, len(f.regs))
	for _, ft := range f.tenants {
		counts[ft.sw]++
	}
	for sw, n := range counts {
		if n > 0 {
			occupied = append(occupied, sw)
		}
	}
	f.mu.RUnlock()

	out := Round{Seq: f.round + 1, Switches: make([]SwitchRound, len(f.regs))}
	for sw := range out.Switches {
		out.Switches[sw] = SwitchRound{Switch: sw, Tenants: counts[sw]}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	workers := f.cfg.Workers
	if workers > len(occupied) {
		workers = len(occupied)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sw := range work {
				rep, err := f.regs[sw].SyncCtx(ctx)
				sr := &out.Switches[sw]
				if err != nil {
					sr.Err = err.Error()
				}
				for _, tr := range rep.Tenants {
					if tr.Delay > sr.Delay {
						sr.Delay = tr.Delay
					}
					if tr.Degraded {
						sr.Degraded++
					}
					sr.Writes += tr.Writes
				}
				sr.Arbiter = rep.Arbiter
				if f.cfg.RoundDeadline > 0 && sr.Delay > f.cfg.RoundDeadline {
					sr.DeadlineExceeded = true
				}
			}
		}()
	}
	for _, sw := range occupied {
		select {
		case work <- sw:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return out, ctx.Err()
		}
	}
	close(work)
	wg.Wait()

	delays := make([]time.Duration, 0, len(occupied))
	for _, sw := range occupied {
		delays = append(delays, out.Switches[sw].Delay)
	}
	out.MaxDelay = Makespan(delays, f.cfg.Workers)

	f.round++
	out.Seq = f.round
	if f.cfg.Migration.Every > 0 && f.round%f.cfg.Migration.Every == 0 {
		out.Migrations = f.rebalance(ctx)
	}
	return out, nil
}

// Makespan schedules the given modelled delays onto `workers` lanes with
// longest-processing-time-first greedy assignment and returns the longest
// lane — the modelled wall time of running them on a bounded pool. This is
// the fabric's round-latency and replay-throughput scaling model: on a
// machine with fewer cores than workers the wall clock cannot show the
// overlap, but the modelled makespan is deterministic and matches what the
// pool's schedule would cost with real lanes.
func Makespan(delays []time.Duration, workers int) time.Duration {
	if len(delays) == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(delays) {
		workers = len(delays)
	}
	sorted := append([]time.Duration(nil), delays...)
	for i := 1; i < len(sorted); i++ { // insertion sort, descending
		d := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < d {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = d
	}
	lanes := make([]time.Duration, workers)
	for _, d := range sorted {
		min := 0
		for i := 1; i < workers; i++ {
			if lanes[i] < lanes[min] {
				min = i
			}
		}
		lanes[min] += d
	}
	max := lanes[0]
	for _, l := range lanes[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// FindTenant returns the live core handle for a tenant name — the lookup
// shape the serve package's Cluster seam expects (core.Registry implements
// the same method).
func (f *Fabric) FindTenant(name string) (*core.Tenant, bool) {
	t, _, ok := f.Tenant(name)
	return t, ok
}

// SyncTenants runs one control round for only the named tenants — the
// fabric side of the externally-paced sync seam. Names are grouped by home
// switch and each involved switch's registry runs its subset round on the
// fabric's bounded worker pool; uninvolved switches are not touched, and no
// migrations are decided (migration stays on SyncAll's cadence). Per-tenant
// reports are merged across switches. Unknown names are errors.
func (f *Fabric) SyncTenants(ctx context.Context, names []string) (map[string]core.SyncReport, error) {
	f.mu.RLock()
	bySwitch := make(map[int][]string)
	for _, name := range names {
		ft, ok := f.byName[name]
		if !ok {
			f.mu.RUnlock()
			return nil, fmt.Errorf("fabric: sync subset: unknown tenant %q", name)
		}
		bySwitch[ft.sw] = append(bySwitch[ft.sw], name)
	}
	f.mu.RUnlock()

	switches := make([]int, 0, len(bySwitch))
	for sw := range bySwitch {
		switches = append(switches, sw)
	}
	out := make(map[string]core.SyncReport, len(names))
	reps := make([]map[string]core.SyncReport, len(switches))
	errs := make([]error, len(switches))
	work := make(chan int)
	var wg sync.WaitGroup
	workers := f.cfg.Workers
	if workers > len(switches) {
		workers = len(switches)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reps[i], errs[i] = f.regs[switches[i]].SyncTenants(ctx, bySwitch[switches[i]])
			}
		}()
	}
	for i := range switches {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return out, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	for i, sw := range switches {
		if errs[i] != nil {
			return out, fmt.Errorf("fabric: switch %d: %w", sw, errs[i])
		}
		for name, rep := range reps[i] {
			out[name] = rep
		}
	}
	return out, nil
}

// Budgets snapshots every tenant's current entry budget by name.
func (f *Fabric) Budgets() map[string]int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int, len(f.tenants))
	for _, ft := range f.tenants {
		out[ft.name] = ft.t.Budget()
	}
	return out
}

// Placement snapshots tenant name → home switch.
func (f *Fabric) Placement() map[string]int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int, len(f.tenants))
	for _, ft := range f.tenants {
		out[ft.name] = ft.sw
	}
	return out
}
