package fabric

import (
	"context"
	"strings"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
)

// TestFabricSyncTenantsSubset syncs a subset that spans switches and checks
// the per-switch rounds merge into one report map.
func TestFabricSyncTenantsSubset(t *testing.T) {
	f, err := New(Config{Switches: 2, SwitchEntries: 256, Workers: 2, VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Enough tenants that the ring almost surely uses both switches.
	names := []string{"st-a", "st-b", "st-c", "st-d", "st-e", "st-f"}
	for _, name := range names {
		if _, err := f.AddUnary(name, tenantCfg(16), arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for _, name := range names {
		_, sw, ok := f.Tenant(name)
		if !ok {
			t.Fatalf("tenant %s missing", name)
		}
		seen[sw] = true
	}
	if len(seen) < 2 {
		t.Skip("ring placed all tenants on one switch; subset merge not exercised")
	}
	for _, name := range names {
		tn, _, _ := f.Tenant(name)
		for v := uint64(0); v < 200; v++ {
			tn.Unary().Observe(v % 64)
		}
	}
	subset := names[:4]
	reps, err := f.SyncTenants(context.Background(), subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(subset) {
		t.Fatalf("got %d reports, want %d: %v", len(reps), len(subset), reps)
	}
	for _, name := range subset {
		rep, ok := reps[name]
		if !ok {
			t.Errorf("no report for %s", name)
			continue
		}
		if rep.Reads == 0 {
			t.Errorf("tenant %s: round did no register reads", name)
		}
	}
	for _, name := range names[4:] {
		if _, ok := reps[name]; ok {
			t.Errorf("tenant %s outside subset got a report", name)
		}
	}
}

func TestFabricSyncTenantsUnknown(t *testing.T) {
	f, err := New(Config{Switches: 2, SwitchEntries: 128, Workers: 1, VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddUnary("known", tenantCfg(16), arith.OpSquare); err != nil {
		t.Fatal(err)
	}
	_, err = f.SyncTenants(context.Background(), []string{"known", "nope"})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown tenant error = %v, want mention of %q", err, "nope")
	}
}

// TestFabricSyncTenantsCancel covers the ctx-abort path: a pre-cancelled
// context must return promptly with ctx.Err and leave no stuck workers
// (the package TestMain leak check backstops the latter).
func TestFabricSyncTenantsCancel(t *testing.T) {
	f, err := New(Config{Switches: 4, SwitchEntries: 256, Workers: 1, VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 8; i++ {
		n := "cancel-" + string(rune('a'+i))
		if _, err := f.AddUnary(n, tenantCfg(16), arith.OpSquare); err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.SyncTenants(ctx, names); err == nil {
		t.Fatal("pre-cancelled sync returned nil error")
	}
}
