// Package fabric shards ADA's operand/tenant space across a fat-tree of
// simulated switches, each running its own core.Registry, and layers a
// fabric-level controller on top: per-switch control rounds scheduled
// concurrently on a bounded worker pool with per-round deadlines, plus a
// fabric arbiter that migrates tenants between switches using the same
// per-tenant Pressure oracle the local budget arbiter reads. All
// cross-switch control traffic flows through the per-switch
// controlplane.Driver seam, so injected partitions and outages hit
// individual switches without touching their neighbours.
package fabric

import (
	"fmt"
	"sort"
)

// fnv1a is FNV-1a over a string — the ring's only hash. Deterministic across
// runs and platforms so placement (and therefore every benchmark artefact)
// is reproducible.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix(h)
}

// mix is the splitmix64 finalizer. Raw FNV-1a of short sequential names
// ("tenant-00", "tenant-01", …) differs mostly in the low bits, so the
// hashes cluster in one narrow ring region and one switch owns them all;
// the avalanche pass spreads them over the whole ring.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Ring is a consistent-hash ring over switch indices. Each switch owns
// VNodes points on the ring; a tenant lands on the switch owning the first
// point clockwise of its name hash. Adding or removing one switch moves only
// ~1/N of tenants, which keeps warm-started migrations cheap when the
// fabric grows.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	sw   int
}

// NewRing builds a ring of switches*vnodes points.
func NewRing(switches, vnodes int) (*Ring, error) {
	if switches < 1 {
		return nil, fmt.Errorf("fabric: ring needs >= 1 switch, got %d", switches)
	}
	if vnodes < 1 {
		vnodes = 16
	}
	r := &Ring{points: make([]ringPoint, 0, switches*vnodes)}
	for sw := 0; sw < switches; sw++ {
		for v := 0; v < vnodes; v++ {
			h := fnv1a(fmt.Sprintf("switch-%d#%d", sw, v))
			r.points = append(r.points, ringPoint{hash: h, sw: sw})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].sw < r.points[j].sw
	})
	return r, nil
}

// Place returns the switch owning the tenant name.
func (r *Ring) Place(name string) int {
	h := fnv1a(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the ring
	}
	return r.points[i].sw
}
