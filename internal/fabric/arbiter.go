package fabric

import (
	"context"

	"github.com/ada-repro/ada/internal/core"
)

// MigrationConfig tunes the fabric-level arbiter. Where the switch-local
// arbiter only shuffles budget between tenants already on a switch, the
// fabric arbiter moves whole tenants toward switches with spare capacity —
// the cross-switch half of Algorithm 3's error-pressure minimisation.
type MigrationConfig struct {
	// Every runs the arbiter after every Nth fabric round; <= 0 disables
	// migrations (static placement).
	Every int
	// MaxMoves caps migrations per arbiter run (default 2).
	MaxMoves int
	// MinGainFrac is the minimum fractional error-pressure relief —
	// (P(cur budget) - P(granted budget)) / P(cur budget) — required to
	// justify a move (default 0.05). The damping that prevents thrash.
	MinGainFrac float64
	// MinBudget is the smallest destination grant worth migrating for
	// (default 8): a starved destination is no destination.
	MinBudget int
	// WarmSamples bounds the synthetic samples replayed into the new home's
	// monitor from the old home's trie histogram (default 1024).
	WarmSamples int
}

func (m MigrationConfig) withDefaults() MigrationConfig {
	if m.MaxMoves < 1 {
		m.MaxMoves = 2
	}
	if m.MinGainFrac <= 0 {
		m.MinGainFrac = 0.05
	}
	if m.MinBudget < 1 {
		m.MinBudget = 8
	}
	if m.WarmSamples < 1 {
		m.WarmSamples = 1024
	}
	return m
}

// Migration records one completed tenant move.
type Migration struct {
	// Tenant is the moved tenant's name.
	Tenant string
	// From and To are the old and new home switches.
	From, To int
	// OldBudget and NewBudget are the entry budgets before and after.
	OldBudget, NewBudget int
	// GainFrac is the predicted fractional pressure relief that justified
	// the move.
	GainFrac float64
	// Writes counts physical row deletes retiring the old slice.
	Writes int
}

// rebalance is the fabric arbiter: up to MaxMoves times, find the switch
// with the most grantable capacity, probe every tenant's Pressure oracle at
// the grant it would receive there, and migrate the tenant with the largest
// predicted relief. Runs after the switch rounds of a fabric round, never
// concurrently with itself; ingest may proceed concurrently (routing swaps
// under the fabric lock).
func (f *Fabric) rebalance(ctx context.Context) []Migration {
	mc := f.cfg.Migration.withDefaults()
	var moves []Migration
	for len(moves) < mc.MaxMoves {
		m, ok := f.tryMove(ctx, mc)
		if !ok {
			break
		}
		moves = append(moves, m)
	}
	return moves
}

func (f *Fabric) tryMove(ctx context.Context, mc MigrationConfig) (Migration, bool) {
	f.mu.RLock()
	tenants := append([]*Tenant(nil), f.tenants...)
	homes := make([]int, len(tenants))
	counts := make([]int, len(f.regs))
	for i, ft := range tenants {
		homes[i] = ft.sw
		counts[ft.sw]++
	}
	f.mu.RUnlock()

	// The best destination is the switch offering the largest grant: free
	// headroom capped at an equal share of capacity among its prospective
	// population, so one migrant never strip-mines an empty switch and later
	// moves still find room.
	dst, grant := -1, 0
	for sw, reg := range f.regs {
		g := reg.Partition().Headroom()
		if share := f.cfg.SwitchEntries / (counts[sw] + 1); g > share {
			g = share
		}
		if g > grant {
			dst, grant = sw, g
		}
	}
	if dst < 0 || grant < mc.MinBudget {
		return Migration{}, false
	}

	// Probe the oracle: predicted pressure relief for each tenant if it
	// moved to dst with the grant. Only moves toward strictly more entries
	// are considered — the other direction is the local arbiter's job.
	best, bestGain, bestFrac := -1, 0.0, 0.0
	for i, ft := range tenants {
		if homes[i] == dst {
			continue
		}
		cur := ft.t.Budget()
		if grant <= cur {
			continue
		}
		sigCur, err := ft.t.Pressure(cur)
		if err != nil || sigCur.Pressure <= 0 {
			continue
		}
		sigNew, err := ft.t.Pressure(grant)
		if err != nil {
			continue
		}
		gain := sigCur.Pressure - sigNew.Pressure
		frac := gain / sigCur.Pressure
		if frac < mc.MinGainFrac {
			continue
		}
		if gain > bestGain {
			best, bestGain, bestFrac = i, gain, frac
		}
	}
	if best < 0 {
		return Migration{}, false
	}

	ft := tenants[best]
	m, err := f.migrate(ctx, ft, homes[best], dst, grant, mc)
	if err != nil {
		return Migration{}, false
	}
	m.GainFrac = bestFrac
	return m, true
}

// migrate executes one move transactionally: mount a twin on dst, warm its
// monitor from the old trie, populate it with one local round, then retire
// the old slice. A failed retire rolls the twin back and keeps the tenant
// where it was; a failed mount aborts before anything changed. Routing only
// swaps after the old slice is gone, so a tenant is never unreachable.
func (f *Fabric) migrate(ctx context.Context, ft *Tenant, src, dst, grant int, mc MigrationConfig) (Migration, error) {
	cfg := ft.cfg
	cfg.CalcEntries = grant
	dstT, err := f.regs[dst].MountUnary(ft.name, f.mountConfig(dst, cfg), ft.op)
	if err != nil {
		return Migration{}, err
	}
	oldBudget := ft.t.Budget()
	warmStart(ft.t, dstT, mc.WarmSamples)
	if _, err := dstT.SyncCtx(ctx); err != nil {
		f.regs[dst].Unmount(ft.name) // best-effort rollback
		return Migration{}, err
	}
	writes, err := f.regs[src].Unmount(ft.name)
	if err != nil {
		f.regs[dst].Unmount(ft.name) // best-effort rollback
		return Migration{}, err
	}

	f.mu.Lock()
	ft.sw = dst
	ft.t = dstT
	ft.cfg.CalcEntries = grant
	f.mu.Unlock()

	// The local arbiter conserves the sum of member budgets, not capacity:
	// headroom freed by the departure would never be re-granted on src, so
	// redistribute it across the stay-behinds explicitly.
	remaining := f.regs[src].Tenants()
	if len(remaining) > 0 && oldBudget > 0 {
		share := oldBudget / len(remaining)
		extra := oldBudget - share*len(remaining)
		for i, rt := range remaining {
			add := share
			if i == 0 {
				add += extra
			}
			if add > 0 {
				rt.SetBudget(rt.Budget() + add) // headroom is exactly free; best-effort
			}
		}
	}
	return Migration{
		Tenant: ft.name, From: src, To: dst,
		OldBudget: oldBudget, NewBudget: grant, Writes: writes,
	}, nil
}

// warmStart replays the old home's monitoring-trie histogram into the new
// home's monitor: each leaf contributes its midpoint, weighted by scaled
// hits and capped near maxSamples total, so the first control round on the
// new switch sees the operand distribution the old switch had learned
// instead of starting cold.
func warmStart(src, dst *core.Tenant, maxSamples int) {
	leaves := src.Unary().Controller().Trie().Leaves()
	var total uint64
	for _, b := range leaves {
		total += b.Hits
	}
	if total == 0 {
		return
	}
	scale := (total + uint64(maxSamples) - 1) / uint64(maxSamples) // >= 1
	buf := make([]uint64, 0, maxSamples+len(leaves))
	for _, b := range leaves {
		n := b.Hits / scale
		if b.Hits > 0 && n == 0 {
			n = 1 // keep light bins visible to the first rebalance
		}
		v := b.Prefix.Midpoint()
		for i := uint64(0); i < n; i++ {
			buf = append(buf, v)
		}
	}
	dst.Unary().ObserveAll(buf)
}
