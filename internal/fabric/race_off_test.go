//go:build !race

package fabric

const raceDetectorEnabled = false
