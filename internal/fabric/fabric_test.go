package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/tenant"

	"github.com/ada-repro/ada/internal/core"
)

func tenantCfg(budget int) core.Config {
	cfg := core.DefaultConfig(12)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = budget
	return cfg
}

// triangular samples a peaked operand distribution in [0, 1<<12).
func triangular(rng *rand.Rand, peak, spread uint64) uint64 {
	d := int64(rng.Uint64()%spread) - int64(rng.Uint64()%spread)
	v := int64(peak) + d
	if v < 0 {
		v = 0
	}
	if v >= 1<<12 {
		v = 1<<12 - 1
	}
	return uint64(v)
}

// placeOn probes the ring for count names that land on the wanted switch.
func placeOn(t *testing.T, r *Ring, sw, count int) []string {
	t.Helper()
	var names []string
	for i := 0; len(names) < count && i < 100000; i++ {
		n := fmt.Sprintf("probe-%d", i)
		if r.Place(n) == sw {
			names = append(names, n)
		}
	}
	if len(names) < count {
		t.Fatalf("could not find %d names on switch %d", count, sw)
	}
	return names
}

func TestRingDeterministicAndSpread(t *testing.T) {
	r1, err := NewRing(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(8, 32)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		n := fmt.Sprintf("tenant-%02d", i)
		if r1.Place(n) != r2.Place(n) {
			t.Fatalf("placement not deterministic for %q", n)
		}
		seen[r1.Place(n)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("64 names landed on only %d of 8 switches", len(seen))
	}
	for i := 0; i < 64; i++ {
		if sw := r1.Place(fmt.Sprintf("tenant-%02d", i)); sw < 0 || sw >= 8 {
			t.Fatalf("placement out of range: %d", sw)
		}
	}
}

func TestMakespan(t *testing.T) {
	d := []time.Duration{4, 3, 3, 2}
	cases := []struct {
		workers int
		want    time.Duration
	}{{1, 12}, {2, 6}, {4, 4}, {8, 4}, {0, 12}}
	for _, c := range cases {
		if got := Makespan(d, c.workers); got != c.want {
			t.Errorf("Makespan(workers=%d) = %d, want %d", c.workers, got, c.want)
		}
	}
	if got := Makespan(nil, 4); got != 0 {
		t.Errorf("empty makespan = %d", got)
	}
}

// TestFabricIngestSyncAdapts drives the full loop: packed ingest through
// ShardedReplay, concurrent switch rounds, then a second measured pass whose
// mean relative error must improve once the populations have adapted to the
// observed (peaked) distributions — mounting installs a uniform initial
// population, so the gain is the fabric's whole point.
func TestFabricIngestSyncAdapts(t *testing.T) {
	f, err := New(Config{
		Switches: 4, SwitchEntries: 256, Workers: 2, VNodes: 16,
		TenantArbiter: tenant.ArbiterConfig{Every: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := []arith.UnaryOp{arith.OpSquare, arith.OpSqrt, arith.OpRecip}
	tenantOps := make([]arith.UnaryOp, 6)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		tenantOps[i] = ops[i%len(ops)]
		if _, err := f.AddUnary(name, tenantCfg(32), tenantOps[i]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	stream := make([]uint64, 0, 6*2000)
	for s := 0; s < 2000; s++ {
		for ti := 0; ti < 6; ti++ {
			stream = append(stream, Pack(ti, triangular(rng, uint64(300+500*ti), 200)))
		}
	}

	snap := f.RouteSnapshot(nil)
	route := func(p uint64) int { return snap[p>>32] }
	workers := 2
	scratch := make([]IngestScratch, workers)
	var mu sync.Mutex
	ingest := func() float64 {
		var errSum float64
		var samples int
		sr := netsim.NewShardedReplay(f.NumSwitches(), 256)
		sr.Replay(workers, stream, route, func(w, shard int, batch []uint64) {
			var local float64
			n := 0
			f.ObserveEvalPacked(batch, &scratch[w], func(tidx int, xs, approx []uint64) {
				for i, x := range xs {
					exact := tenantOps[tidx].Exact(x)
					diff := float64(approx[i]) - float64(exact)
					if diff < 0 {
						diff = -diff
					}
					den := float64(exact)
					if den < 1 {
						den = 1
					}
					local += diff / den
					n++
				}
			})
			mu.Lock()
			errSum += local
			samples += n
			mu.Unlock()
		})
		return errSum / float64(samples)
	}

	before := ingest()
	for r := 0; r < 3; r++ {
		round, err := f.SyncAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if round.Seq != r+1 {
			t.Fatalf("round seq = %d, want %d", round.Seq, r+1)
		}
		if round.MaxDelay <= 0 && r == 0 {
			t.Fatal("first round reported zero modelled delay")
		}
		ingest() // keep feeding so later rounds see fresh registers
	}
	after := ingest()
	if after >= before*0.8 {
		t.Fatalf("mean error %.4f -> %.4f after sync, want >20%% improvement", before, after)
	}
}

// handshakeDriver blocks switch 0's register read until switch 1's round
// has started — it only completes when rounds for distinct switches overlap.
type handshakeDriver struct {
	controlplane.Driver
	sw      int
	started chan struct{} // closed when switch 1 starts
	once    *sync.Once
}

func (d *handshakeDriver) ReadRegisters() ([]uint64, error) {
	if d.sw == 1 {
		d.once.Do(func() { close(d.started) })
	} else if d.sw == 0 {
		select {
		case <-d.started:
		case <-time.After(30 * time.Second):
			return nil, errors.New("handshake timeout: rounds serialized")
		}
	}
	return d.Driver.ReadRegisters()
}

// TestFabricRoundsOverlap proves rounds for different switches overlap on
// the worker pool instead of serializing: switch 0's driver refuses to make
// progress until switch 1's round is in flight.
func TestFabricRoundsOverlap(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	f, err := New(Config{
		Switches: 2, SwitchEntries: 128, Workers: 2, VNodes: 16,
		WrapDriver: func(sw int, d controlplane.Driver) controlplane.Driver {
			return &handshakeDriver{Driver: d, sw: sw, started: started, once: &once}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := f.ring
	n0 := placeOn(t, ring, 0, 1)
	n1 := placeOn(t, ring, 1, 1)
	if _, err := f.AddUnary(n0[0], tenantCfg(16), arith.OpSquare); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddUnary(n1[0], tenantCfg(16), arith.OpSquare); err != nil {
		t.Fatal(err)
	}
	round, err := f.SyncAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for sw := 0; sw < 2; sw++ {
		if round.Switches[sw].Err != "" || round.Switches[sw].Degraded > 0 {
			t.Fatalf("switch %d round failed: %+v", sw, round.Switches[sw])
		}
	}
}

// TestFabricDeadline injects fixed driver latency above the fabric round
// deadline and expects the round flagged (and the controller degraded with
// the deadline reason via the plumbed RetryPolicy).
func TestFabricDeadline(t *testing.T) {
	inj := faults.MustNew(faults.Profile{Seed: 3, Latency: faults.Fixed(5 * time.Millisecond)})
	f, err := New(Config{
		Switches: 2, SwitchEntries: 128, Workers: 2, VNodes: 16,
		RoundDeadline: time.Millisecond,
		WrapDriver: func(sw int, d controlplane.Driver) controlplane.Driver {
			if sw == 0 {
				return inj.Wrap(d)
			}
			return d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := placeOn(t, f.ring, 0, 1)
	if _, err := f.AddUnary(names[0], tenantCfg(16), arith.OpSquare); err != nil {
		t.Fatal(err)
	}
	round, err := f.SyncAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := round.Switches[0]
	if !sr.DeadlineExceeded {
		t.Fatalf("switch 0 delay %v under 1ms deadline not flagged: %+v", sr.Delay, sr)
	}
	if sr.Degraded == 0 {
		t.Fatalf("expected deadline-degraded tenant round, got %+v", sr)
	}
}

// crowdedFabric builds 2 switches with `n` tenants all on switch 0 and
// switch 1 empty — the canonical migration setup.
func crowdedFabric(t *testing.T, n, switchEntries, budget, migrateEvery int) (*Fabric, []string) {
	t.Helper()
	f, err := New(Config{
		Switches: 2, SwitchEntries: switchEntries, Workers: 2, VNodes: 16,
		TenantArbiter: tenant.ArbiterConfig{Every: 2},
		Migration:     MigrationConfig{Every: migrateEvery, MaxMoves: 1, MinBudget: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := placeOn(t, f.ring, 0, n)
	for _, name := range names {
		if _, err := f.AddUnary(name, tenantCfg(budget), arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	return f, names
}

func feedFabric(t *testing.T, f *Fabric, samples int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sc IngestScratch
	n := f.NumTenants()
	batch := make([]uint64, 0, 512)
	for s := 0; s < samples; s++ {
		for ti := 0; ti < n; ti++ {
			batch = append(batch, Pack(ti, triangular(rng, uint64(200+700*ti), 600)))
			if len(batch) == cap(batch) {
				f.ObserveEvalPacked(batch, &sc, nil)
				batch = batch[:0]
			}
		}
	}
	if len(batch) > 0 {
		f.ObserveEvalPacked(batch, &sc, nil)
	}
}

// TestFabricMigration crowds switch 0 and expects the fabric arbiter to move
// a tenant to empty switch 1 with a larger budget, redistribute the freed
// budget to the stay-behinds, and keep both partitions valid.
func TestFabricMigration(t *testing.T) {
	f, names := crowdedFabric(t, 3, 96, 32, 1)
	feedFabric(t, f, 1500, 11)

	var migrated []Migration
	for r := 0; r < 3 && len(migrated) == 0; r++ {
		round, err := f.SyncAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		migrated = append(migrated, round.Migrations...)
		if r < 2 {
			feedFabric(t, f, 300, int64(20+r))
		}
	}
	if len(migrated) == 0 {
		t.Fatal("no migration after 3 rounds on a crowded switch")
	}
	m := migrated[0]
	if m.From != 0 || m.To != 1 {
		t.Fatalf("migration %+v, want 0 -> 1", m)
	}
	if m.NewBudget <= m.OldBudget {
		t.Fatalf("migration did not grow budget: %+v", m)
	}
	if _, sw, ok := f.Tenant(m.Tenant); !ok || sw != 1 {
		t.Fatalf("routing not swapped: sw=%d ok=%v", sw, ok)
	}
	if _, ok := f.Registry(0).Tenant(m.Tenant); ok {
		t.Fatal("tenant still mounted on old switch")
	}
	if _, ok := f.Registry(1).Tenant(m.Tenant); !ok {
		t.Fatal("tenant not mounted on new switch")
	}
	// Freed budget redistributed: stay-behind budgets sum to the old total.
	budgets := f.Budgets()
	staySum := 0
	for _, name := range names {
		if name != m.Tenant {
			staySum += budgets[name]
		}
	}
	if staySum != 3*32 {
		t.Fatalf("stay-behind budgets sum %d, want %d (freed budget redistributed)", staySum, 96)
	}
	for sw := 0; sw < 2; sw++ {
		if err := f.Registry(sw).Partition().Validate(); err != nil {
			t.Fatalf("switch %d invariants: %v", sw, err)
		}
	}
	// Data still flows to the migrated tenant through the new home.
	feedFabric(t, f, 100, 31)
}

// TestFabricMigrationRollback fails the old home's row deletes mid-migration
// and expects the move rolled back: twin unmounted, placement unchanged,
// then a clean retry succeeds once the fault clears.
func TestFabricMigrationRollback(t *testing.T) {
	f, _ := crowdedFabric(t, 3, 96, 32, 3)
	feedFabric(t, f, 1500, 17)
	ctx := context.Background()
	for r := 0; r < 2; r++ { // rounds 1-2: populate cleanly
		if _, err := f.SyncAll(ctx); err != nil {
			t.Fatal(err)
		}
		feedFabric(t, f, 300, int64(40+r))
	}
	boom := errors.New("boom")
	f.Registry(0).Partition().SetWriteHook(func(op tcam.WriteOp) error {
		if op == tcam.WriteDelete {
			return boom
		}
		return nil
	})
	round, err := f.SyncAll(ctx) // round 3: migration attempt, Close fails
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Migrations) != 0 {
		t.Fatalf("migration reported despite failed retire: %+v", round.Migrations)
	}
	if got := len(f.Registry(1).Tenants()); got != 0 {
		t.Fatalf("twin left mounted on destination after rollback: %d tenants", got)
	}
	for name, sw := range f.Placement() {
		if sw != 0 {
			t.Fatalf("tenant %q rerouted despite rollback", name)
		}
	}
	if err := f.Registry(0).Partition().Validate(); err != nil {
		t.Fatalf("source invariants after rollback: %v", err)
	}

	f.Registry(0).Partition().SetWriteHook(nil)
	migrated := false
	for r := 0; r < 3 && !migrated; r++ {
		round, err := f.SyncAll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		migrated = migrated || len(round.Migrations) > 0
		feedFabric(t, f, 200, int64(50+r))
	}
	if !migrated {
		t.Fatal("no migration after fault cleared")
	}
}

// TestFabricSoak hammers concurrent packed ingest against fabric rounds with
// migrations enabled — the race-detector target for the fabric.
func TestFabricSoak(t *testing.T) {
	f, err := New(Config{
		Switches: 4, SwitchEntries: 128, Workers: 2, VNodes: 16,
		TenantArbiter: tenant.ArbiterConfig{Every: 2},
		Migration:     MigrationConfig{Every: 2, MaxMoves: 1, MinBudget: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := f.AddUnary(fmt.Sprintf("soak-%02d", i), tenantCfg(16), arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var sc IngestScratch
			batch := make([]uint64, 0, 256)
			var snap []int
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap = f.RouteSnapshot(snap)
				batch = batch[:0]
				for i := 0; i < 256; i++ {
					ti := rng.Intn(len(snap))
					batch = append(batch, Pack(ti, triangular(rng, uint64(300+400*ti), 500)))
				}
				f.ObserveEvalPacked(batch, &sc, nil)
			}
		}(w)
	}
	for r := 0; r < rounds; r++ {
		if _, err := f.SyncAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for sw := 0; sw < f.NumSwitches(); sw++ {
		if err := f.Registry(sw).Partition().Validate(); err != nil {
			t.Fatalf("switch %d invariants after soak: %v", sw, err)
		}
	}
}

// TestShardedReplayIngestAllocs checks the steady-state fan-out + packed
// ingest path allocates nothing per replay pass.
func TestShardedReplayIngestAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	f, err := New(Config{Switches: 2, SwitchEntries: 128, Workers: 1, VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.AddUnary(fmt.Sprintf("alloc-%d", i), tenantCfg(16), arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	stream := make([]uint64, 4096)
	for i := range stream {
		stream[i] = Pack(rng.Intn(3), triangular(rng, 500, 300))
	}
	snap := f.RouteSnapshot(nil)
	route := func(p uint64) int { return snap[p>>32] }
	sr := netsim.NewShardedReplay(2, 256)
	var sc IngestScratch
	fn := func(w, shard int, batch []uint64) {
		f.ObserveEvalPacked(batch, &sc, nil)
	}
	pass := func() {
		sr.Replay(1, stream, route, fn)
	}
	pass() // warm up buffers
	if _, err := f.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	pass()
	if avg := testing.AllocsPerRun(5, pass); avg > 0.5 {
		t.Fatalf("sharded ingest allocates %.1f allocs/pass, want 0", avg)
	}
}
