package fabric

import (
	"testing"

	"github.com/ada-repro/ada/internal/leakcheck"
)

// TestMain backstops the package: the control-round worker pools and
// migration machinery must leave no goroutine behind once the tests end.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
