package arith

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/trie"
)

func TestUnaryOpExact(t *testing.T) {
	tests := []struct {
		op   UnaryOp
		x    uint64
		want uint64
	}{
		{OpSquare, 0, 0},
		{OpSquare, 7, 49},
		{OpSquare, math.MaxUint32 + 1, math.MaxUint64}, // saturates
		{OpDouble, 21, 42},
		{OpDouble, math.MaxUint64, math.MaxUint64}, // saturates
		{OpSqrt, 16, 4},
		{OpSqrt, 17, 4},
		{OpLog2, 1, 0},
		{OpLog2, 0, 0}, // clamped to log2(1)
		{OpLog2, 2, Scale},
		{OpRecip, 1, Scale},
		{OpRecip, 0, Scale},
		{OpRecip, 2, Scale / 2},
	}
	for _, tt := range tests {
		if got := tt.op.Exact(tt.x); got != tt.want {
			t.Errorf("%v.Exact(%d) = %d, want %d", tt.op, tt.x, got, tt.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []UnaryOp{OpSquare, OpDouble, OpSqrt, OpLog2, OpRecip} {
		if op.String() == "" {
			t.Errorf("empty String for %d", int(op))
		}
	}
	if OpMul.String() != "mul" || OpDiv.String() != "div" {
		t.Error("binary op strings wrong")
	}
	if UnaryOp(99).String() == "" || BinaryOp(99).String() == "" {
		t.Error("unknown ops must still render")
	}
}

func TestBinaryOpExact(t *testing.T) {
	if got := OpMul.Exact(6, 7); got != 42 {
		t.Errorf("mul = %d", got)
	}
	if got := OpMul.Exact(math.MaxUint64, 2); got != math.MaxUint64 {
		t.Errorf("mul saturation = %d", got)
	}
	if got := OpDiv.Exact(42, 6); got != 7 {
		t.Errorf("div = %d", got)
	}
	if got := OpDiv.Exact(1, 0); got != math.MaxUint64 {
		t.Errorf("div by zero = %d", got)
	}
}

func TestUnaryEngineEval(t *testing.T) {
	entries, err := population.NaiveUnary(OpSquare.Func(), 8, 32, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewUnaryEngine("sq", 8, 32, entries)
	if err != nil {
		t.Fatal(err)
	}
	// Domain fully covered: no misses, result equals the installed entry.
	for x := uint64(0); x < 256; x++ {
		got, err := e.Eval(x)
		if err != nil {
			t.Fatalf("Eval(%d): %v", x, err)
		}
		if RelError(got, OpSquare.Exact(x)) > 1.0 && x > 4 {
			t.Errorf("Eval(%d) = %d: error too large for 32 entries", x, got)
		}
	}
	if e.Width() != 8 {
		t.Error("Width mismatch")
	}
}

func TestUnaryEngineMiss(t *testing.T) {
	// Populate only [0, 63] of an 8-bit domain: out-of-range must miss.
	entries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewUnaryEngine("sq", 8, 8, entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(10); err != nil {
		t.Errorf("in-range Eval: %v", err)
	}
	if _, err := e.Eval(200); !errors.Is(err, ErrMiss) {
		t.Errorf("out-of-range Eval error = %v, want ErrMiss", err)
	}
}

func TestUnaryEngineCapacity(t *testing.T) {
	entries, err := population.NaiveUnary(OpSquare.Func(), 8, 32, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUnaryEngine("sq", 8, 16, entries); err == nil {
		t.Error("32 entries into capacity 16: want error")
	}
}

func TestUnaryEngineReload(t *testing.T) {
	first, _ := population.NaiveUnary(OpSquare.Func(), 8, 4, population.Midpoint)
	e, err := NewUnaryEngine("sq", 8, 8, first)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := population.NaiveUnary(OpSquare.Func(), 8, 8, population.Midpoint)
	writes, err := e.Reload(second)
	if err != nil {
		t.Fatal(err)
	}
	if writes != 4+8 {
		t.Errorf("reload writes = %d, want 12", writes)
	}
	if e.Table().Len() != 8 {
		t.Errorf("after reload Len = %d, want 8", e.Table().Len())
	}
}

func TestBinaryEngine(t *testing.T) {
	entries, err := population.NaiveBinary(OpMul.Func(), 6, 64, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBinaryEngine("mul", 6, 64, entries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	misses := 0
	for i := 0; i < 500; i++ {
		x, y := uint64(rng.Intn(64)), uint64(rng.Intn(64))
		if _, err := e.Eval(x, y); err != nil {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("%d misses on fully covered domain", misses)
	}
	if e.Width() != 6 {
		t.Error("Width mismatch")
	}
	// Reload path.
	if _, err := e.Reload(entries); err != nil {
		t.Fatal(err)
	}
}

func TestLogEngineMultiply(t *testing.T) {
	lt, err := population.BuildLogTables(16, 1024, 2048, 0, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewLogEngine("m", lt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.TotalEntries() != lt.TotalEntries() {
		t.Errorf("TotalEntries = %d, want %d", e.TotalEntries(), lt.TotalEntries())
	}
	rng := rand.New(rand.NewSource(2))
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		x := uint64(512 + rng.Intn(1<<16-512))
		y := uint64(512 + rng.Intn(1<<16-512))
		got, err := e.Multiply(x, y)
		if err != nil {
			t.Fatalf("Multiply(%d,%d): %v", x, y, err)
		}
		sum += RelError(got, OpMul.Exact(x, y))
	}
	if avg := sum / n; avg > 0.05 {
		t.Errorf("avg log-multiply error %.4f > 5%%", avg)
	}
	if got, err := e.Multiply(0, 99); err != nil || got != 0 {
		t.Errorf("Multiply(0,99) = %d, %v", got, err)
	}
}

func TestLogEngineDivide(t *testing.T) {
	lt, err := population.BuildLogTables(16, 2048, 2048, 0, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewLogEngine("d", lt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Divide(5, 0); err == nil {
		t.Error("divide by zero: want error")
	}
	if got, err := e.Divide(0, 5); err != nil || got != 0 {
		t.Errorf("Divide(0,5) = %d, %v", got, err)
	}
	got, err := e.Divide(40000, 40000)
	if err != nil || got > 2 {
		t.Errorf("Divide(x,x) = %d, %v; want ≈1", got, err)
	}
	got, err = e.Divide(3, 40000)
	if err != nil || got > 1 {
		t.Errorf("Divide(small,big) = %d, %v; want 0/1", got, err)
	}
}

func TestRelError(t *testing.T) {
	tests := []struct {
		approx, exact uint64
		want          float64
	}{
		{100, 100, 0},
		{110, 100, 0.1},
		{90, 100, 0.1},
		{5, 0, 5}, // max(1, exact) denominator
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := RelError(tt.approx, tt.exact); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RelError(%d, %d) = %g, want %g", tt.approx, tt.exact, got, tt.want)
		}
	}
}

func TestMeasureUnary(t *testing.T) {
	entries, _ := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	e, err := NewUnaryEngine("sq", 8, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	samples := []uint64{1, 10, 20, 200, 220} // last two miss
	s := MeasureUnary(e.Eval, OpSquare, samples)
	if s.Misses != 2 || s.N != 3 {
		t.Errorf("Misses = %d, N = %d; want 2, 3", s.Misses, s.N)
	}
	if s.Avg < 0 || s.Worst < s.Avg {
		t.Errorf("inconsistent summary %+v", s)
	}
	if s.AvgPercent() != s.Avg*100 {
		t.Error("AvgPercent mismatch")
	}
}

func TestMeasureBinary(t *testing.T) {
	entries, _ := population.NaiveBinary(OpMul.Func(), 4, 16, population.Midpoint)
	e, err := NewBinaryEngine("m", 4, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	xs := []uint64{1, 2, 3}
	ys := []uint64{4, 5} // shorter: only two pairs evaluated
	s := MeasureBinary(e.Eval, OpMul, xs, ys)
	if s.N != 2 {
		t.Errorf("N = %d, want 2", s.N)
	}
}

func TestPropagationSquareWorseThanDouble(t *testing.T) {
	// §V-A4: iterating x² amplifies lookup error far more than 2x.
	const width = 32
	sqEntries, err := population.NaiveUnary(OpSquare.Func(), width, 256, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	dbEntries, err := population.NaiveUnary(OpDouble.Func(), width, 256, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	sqE, err := NewUnaryEngine("sq", width, 0, sqEntries)
	if err != nil {
		t.Fatal(err)
	}
	dbE, err := NewUnaryEngine("db", width, 0, dbEntries)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{5, 8, 10, 12, 15, 20}
	domainMax := uint64(math.MaxUint32)
	_, sqMax := MeanPropagation(sqE.Eval, OpSquare, seeds, domainMax, 10)
	_, dbMax := MeanPropagation(dbE.Eval, OpDouble, seeds, domainMax, 10)
	if sqMax <= dbMax*5 {
		t.Errorf("x² propagation %.2f not ≫ 2x propagation %.2f", sqMax, dbMax)
	}
}

func TestPropagateMissClamps(t *testing.T) {
	// Engine covering only [0, 15]: once the chain escapes, the value clamps
	// to domainMax instead of failing.
	entries, _ := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 15, population.Midpoint)
	e, err := NewUnaryEngine("sq", 8, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	r := Propagate(e.Eval, OpSquare, 3, 255, 5)
	if len(r.PerIter) != 5 {
		t.Fatalf("PerIter len = %d", len(r.PerIter))
	}
	if r.Final != r.PerIter[4] {
		t.Error("Final mismatch")
	}
}

func TestMeanPropagationEmptySeeds(t *testing.T) {
	per, m := MeanPropagation(func(x uint64) (uint64, error) { return x, nil }, OpDouble, nil, 100, 3)
	if len(per) != 3 || m != 0 {
		t.Error("empty seeds must yield zero curve")
	}
}

func TestGeoMeanError(t *testing.T) {
	if GeoMeanError(nil) != 0 {
		t.Error("empty: want 0")
	}
	got := GeoMeanError([]float64{0, 0, 0})
	if got != 0 {
		t.Errorf("zeros: %g", got)
	}
	got = GeoMeanError([]float64{3}) // single: (1+3)-1 = 3
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("single: %g", got)
	}
}

func TestADAEngineBeatsNaiveEndToEnd(t *testing.T) {
	// Integration: build monitoring trie from skewed samples, populate an
	// engine with ADA, and verify lower measured error than naive at the
	// same capacity.
	const width, budget = 16, 32
	rng := rand.New(rand.NewSource(77))
	samples := make([]uint64, 30000)
	for i := range samples {
		v := 4000 + rng.NormFloat64()*200
		if v < 0 {
			v = 0
		}
		samples[i] = uint64(v)
	}
	tr, err := trie.NewInitial(12, width)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		tr.ResetHits()
		tr.RecordAll(samples[:2000])
		for i := 0; i < 4 && tr.Rebalance(0.20); i++ {
		}
	}
	tr.ResetHits()
	tr.RecordAll(samples)
	adaEntries, err := population.ADAUnary(tr, OpSquare.Func(), budget, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	naiveEntries, err := population.NaiveUnary(OpSquare.Func(), width, budget, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	adaE, err := NewUnaryEngine("ada", width, budget, adaEntries)
	if err != nil {
		t.Fatal(err)
	}
	naiveE, err := NewUnaryEngine("naive", width, budget, naiveEntries)
	if err != nil {
		t.Fatal(err)
	}
	adaS := MeasureUnary(adaE.Eval, OpSquare, samples)
	naiveS := MeasureUnary(naiveE.Eval, OpSquare, samples)
	if adaS.Misses != 0 {
		t.Errorf("ADA misses = %d", adaS.Misses)
	}
	if adaS.Avg >= naiveS.Avg/2 {
		t.Errorf("ADA avg error %.4f not well below naive %.4f", adaS.Avg, naiveS.Avg)
	}
}

func TestUnaryEvalBatchMatchesEval(t *testing.T) {
	entries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewUnaryEngine("sq", 8, 8, entries)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]uint64, 256)
	for i := range xs {
		xs[i] = uint64(i)
	}
	results, misses := e.EvalBatch(xs)
	if len(results) != len(xs) {
		t.Fatalf("batch results len = %d, want %d", len(results), len(xs))
	}
	wantMisses := 0
	for i, x := range xs {
		got, err := e.Eval(x)
		if err != nil {
			wantMisses++
			if results[i] != 0 {
				t.Errorf("EvalBatch(%d) = %d on a miss, want 0", x, results[i])
			}
			continue
		}
		if results[i] != got {
			t.Errorf("EvalBatch(%d) = %d, Eval = %d", x, results[i], got)
		}
	}
	if misses != wantMisses {
		t.Errorf("batch misses = %d, want %d", misses, wantMisses)
	}
	if misses == 0 {
		t.Error("expected out-of-range misses in half-populated domain")
	}
}

func TestBinaryEvalBatchMatchesEval(t *testing.T) {
	entries, err := population.NaiveBinary(OpMul.Func(), 6, 64, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBinaryEngine("mul", 6, 64, entries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	xs := make([]uint64, 400)
	ys := make([]uint64, 400)
	for i := range xs {
		xs[i], ys[i] = uint64(rng.Intn(64)), uint64(rng.Intn(64))
	}
	results, misses := e.EvalBatch(xs, ys)
	if misses != 0 {
		t.Fatalf("%d batch misses on fully covered domain", misses)
	}
	for i := range xs {
		got, err := e.Eval(xs[i], ys[i])
		if err != nil {
			t.Fatalf("Eval(%d, %d): %v", xs[i], ys[i], err)
		}
		if results[i] != got {
			t.Errorf("EvalBatch(%d, %d) = %d, Eval = %d", xs[i], ys[i], results[i], got)
		}
	}
	// Mismatched lengths evaluate the common prefix.
	short, _ := e.EvalBatch(xs[:10], ys[:5])
	if len(short) != 5 {
		t.Errorf("mismatched-length batch returned %d results, want 5", len(short))
	}
}
