package arith

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/population"
)

func dedupEngines(t *testing.T) (*UnaryEngine, *BinaryEngine) {
	t.Helper()
	uEntries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	ue, err := NewUnaryEngine("sq", 8, 8, uEntries)
	if err != nil {
		t.Fatal(err)
	}
	bEntries, err := population.NaiveBinary(OpMul.Func(), 6, 64, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBinaryEngine("mul", 6, 64, bEntries)
	if err != nil {
		t.Fatal(err)
	}
	return ue, be
}

// TestDedupDifferential pins the dedup + cache path to the plain path on
// adversarial batch shapes: all-identical (one lookup fans out to every
// sample), all-unique (dedup finds nothing to fold), operands pinned at the
// domain maximum (saturating results), and miss-heavy batches (half the
// unary domain is unpopulated). Results and per-occurrence miss accounting
// must be bit-identical throughout.
func TestDedupDifferential(t *testing.T) {
	ue, be := dedupEngines(t)
	rng := rand.New(rand.NewSource(17))

	batches := map[string]func(n int) []uint64{
		"all-identical": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 42
			}
			return out
		},
		"all-unique": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(i) % 256
			}
			return out
		},
		"saturating-max": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 63 // unary domain max; binary field max via %64
			}
			return out
		},
		"miss-heavy": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 64 + uint64(rng.Intn(192)) // outside the populated unary range
			}
			return out
		},
		"zipf-ish": func(n int) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				if rng.Intn(4) > 0 {
					out[i] = uint64(rng.Intn(4))
				} else {
					out[i] = uint64(rng.Intn(256))
				}
			}
			return out
		},
	}

	var sc Scratch
	sc.EnableDedup()
	sc.EnableCache(ue.Store(), 512)
	var scB Scratch
	scB.EnableDedup()
	scB.EnableCache(be.Store(), 512)
	var dst []uint64
	for name, gen := range batches {
		for _, n := range []int{0, 1, 7, 256, 1000} {
			xs := gen(n)
			want, wantM := ue.EvalBatch(xs)
			var gotM int
			dst, gotM = ue.EvalBatchInto(dst, xs, &sc)
			if gotM != wantM {
				t.Fatalf("%s/n=%d: unary misses %d, want %d", name, n, gotM, wantM)
			}
			for i := range xs {
				if dst[i] != want[i] {
					t.Fatalf("%s/n=%d: unary result[%d] = %d, want %d", name, n, i, dst[i], want[i])
				}
			}

			ys := gen(n)
			for i := range ys {
				ys[i] %= 64
			}
			xb := make([]uint64, n)
			for i := range xb {
				xb[i] = xs[i] % 64
			}
			wantB, wantBM := be.EvalBatch(xb, ys)
			dst, gotM = be.EvalBatchInto(dst, xb, ys, &scB)
			if gotM != wantBM {
				t.Fatalf("%s/n=%d: binary misses %d, want %d", name, n, gotM, wantBM)
			}
			for i := range xb {
				if dst[i] != wantB[i] {
					t.Fatalf("%s/n=%d: binary result[%d] = %d, want %d", name, n, i, dst[i], wantB[i])
				}
			}
		}
	}
	if st := sc.CacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("unary cache stats unexercised: %+v", st)
	}
}

// TestDedupReloadDifferential pins dedup + cache across population changes:
// every Reload must invalidate transparently.
func TestDedupReloadDifferential(t *testing.T) {
	ue, _ := dedupEngines(t)
	rng := rand.New(rand.NewSource(23))
	var sc Scratch
	sc.EnableDedup()
	sc.EnableCache(ue.Store(), 256)
	var dst []uint64
	for round := 0; round < 8; round++ {
		hi := uint64(32 + rng.Intn(200))
		entries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, hi, population.Midpoint)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ue.Reload(entries); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 3; b++ {
			xs := make([]uint64, 512)
			for i := range xs {
				xs[i] = uint64(rng.Intn(256))
			}
			want, wantM := ue.EvalBatch(xs)
			var gotM int
			dst, gotM = ue.EvalBatchInto(dst, xs, &sc)
			if gotM != wantM {
				t.Fatalf("round %d: misses %d, want %d", round, gotM, wantM)
			}
			for i := range xs {
				if dst[i] != want[i] {
					t.Fatalf("round %d: result[%d] = %d, want %d", round, i, dst[i], want[i])
				}
			}
		}
	}
	if inv := sc.CacheStats().Invalidations; inv < 7 {
		t.Fatalf("Invalidations = %d, want one per Reload", inv)
	}
}

// TestEnableCacheRebind pins the arming semantics: re-arming with the same
// store and size keeps the warm cache; changing either rebinds cold.
func TestEnableCacheRebind(t *testing.T) {
	ue, be := dedupEngines(t)
	var sc Scratch
	sc.EnableCache(ue.Store(), 128)
	xs := []uint64{1, 2, 3, 1, 2, 3}
	ue.EvalBatchInto(nil, xs, &sc)
	ue.EvalBatchInto(nil, xs, &sc)
	st := sc.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("warm repeat produced no hits: %+v", st)
	}
	sc.EnableCache(ue.Store(), 128) // same binding: no-op
	if got := sc.CacheStats(); got != st {
		t.Fatalf("same-binding EnableCache reset stats: %+v vs %+v", got, st)
	}
	sc.EnableCache(be.Store(), 128) // different store: cold rebind
	if got := sc.CacheStats(); got.Hits != 0 || got.Misses != 0 {
		t.Fatalf("rebind kept old stats: %+v", got)
	}
	// An engine the cache is not armed for bypasses it without error.
	ue.EvalBatchInto(nil, xs, &sc)
	if got := sc.CacheStats(); got.Hits != 0 || got.Misses != 0 {
		t.Fatalf("bypassed store accounted into foreign cache: %+v", got)
	}
}

// TestDedupZeroAllocs: the folded path with an armed cache must stay
// allocation-free in steady state, like the plain EvalBatchInto contract.
func TestDedupZeroAllocs(t *testing.T) {
	ue, be := dedupEngines(t)
	var scU, scB Scratch
	scU.EnableDedup()
	scU.EnableCache(ue.Store(), 1024)
	scB.EnableDedup()
	scB.EnableCache(be.Store(), 1024)
	xs := make([]uint64, 1024)
	ys := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(5))
	for i := range xs {
		xs[i] = uint64(rng.Intn(96)) // mix of hits and misses
		ys[i] = uint64(rng.Intn(64))
	}
	var dst []uint64
	dst, _ = ue.EvalBatchInto(dst, xs, &scU)
	dst, _ = be.EvalBatchInto(dst, xs, ys, &scB)
	if a := testing.AllocsPerRun(50, func() {
		dst, _ = ue.EvalBatchInto(dst, xs, &scU)
	}); a != 0 {
		t.Fatalf("unary dedup+cache AllocsPerRun = %v, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		dst, _ = be.EvalBatchInto(dst, xs, ys, &scB)
	}); a != 0 {
		t.Fatalf("binary dedup+cache AllocsPerRun = %v, want 0", a)
	}
}
