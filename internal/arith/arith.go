// Package arith implements the approximate arithmetic engine: TCAM-backed
// evaluation of the operations PISA switches cannot execute natively
// (multiplication, division, squares, square roots, logarithms), plus the
// error metrics used throughout the paper's evaluation (§V-A3/4).
//
// An engine wraps a tcam.Table populated by one of the population schemes;
// evaluation is a hardware-faithful ternary lookup, not a software shortcut,
// so entry budgets, LPM resolution, and misses behave exactly as they would
// on the switch.
package arith

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrMiss reports a lookup that matched no entry (operand outside the
	// populated working range).
	ErrMiss = errors.New("arith: calculation TCAM miss")
	// ErrResultType reports an entry whose action data is not a result
	// value; it indicates table corruption or misuse.
	ErrResultType = errors.New("arith: entry data is not a result value")
)

// UnaryOp enumerates the single-operand operations with exact reference
// semantics. Fixed-point operations use Scale.
type UnaryOp int

const (
	// OpSquare is f(x) = x², saturating at the uint64 maximum.
	OpSquare UnaryOp = iota + 1
	// OpDouble is f(x) = 2x, saturating.
	OpDouble
	// OpSqrt is f(x) = floor(sqrt(x)).
	OpSqrt
	// OpLog2 is f(x) = round(log2(max(x,1)) * Scale).
	OpLog2
	// OpRecip is f(x) = round(Scale / x), with f(0) = Scale.
	OpRecip
)

// Scale is the fixed-point multiplier for OpLog2 and OpRecip results.
const Scale = 1 << 16

// Exact evaluates the reference (infinitely precise, then rounded) result.
func (op UnaryOp) Exact(x uint64) uint64 {
	switch op {
	case OpSquare:
		hi, lo := mul64(x, x)
		if hi != 0 {
			return math.MaxUint64
		}
		return lo
	case OpDouble:
		if x > math.MaxUint64/2 {
			return math.MaxUint64
		}
		return 2 * x
	case OpSqrt:
		return uint64(math.Sqrt(float64(x)))
	case OpLog2:
		if x < 1 {
			x = 1
		}
		return uint64(math.Round(math.Log2(float64(x)) * Scale))
	case OpRecip:
		if x == 0 {
			return Scale
		}
		return uint64(math.Round(Scale / float64(x)))
	default:
		return 0
	}
}

func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

// Func returns the exact evaluator as a population.UnaryFunc.
func (op UnaryOp) Func() population.UnaryFunc {
	return func(x uint64) uint64 { return op.Exact(x) }
}

// String implements fmt.Stringer.
func (op UnaryOp) String() string {
	switch op {
	case OpSquare:
		return "x^2"
	case OpDouble:
		return "2x"
	case OpSqrt:
		return "sqrt"
	case OpLog2:
		return "log2"
	case OpRecip:
		return "recip"
	default:
		return fmt.Sprintf("UnaryOp(%d)", int(op))
	}
}

// BinaryOp enumerates the two-operand operations.
type BinaryOp int

const (
	// OpMul is f(x, y) = x*y, saturating.
	OpMul BinaryOp = iota + 1
	// OpDiv is f(x, y) = x/y, with f(x, 0) = max.
	OpDiv
)

// Exact evaluates the reference result.
func (op BinaryOp) Exact(x, y uint64) uint64 {
	switch op {
	case OpMul:
		hi, lo := mul64(x, y)
		if hi != 0 {
			return math.MaxUint64
		}
		return lo
	case OpDiv:
		if y == 0 {
			return math.MaxUint64
		}
		return x / y
	default:
		return 0
	}
}

// Func returns the exact evaluator as a population.BinaryFunc.
func (op BinaryOp) Func() population.BinaryFunc {
	return func(x, y uint64) uint64 { return op.Exact(x, y) }
}

// String implements fmt.Stringer.
func (op BinaryOp) String() string {
	switch op {
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// UnaryEngine evaluates a single-operand operation through a calculation
// TCAM. The backing store is either a private physical table or a tenant
// slice of a shared one.
type UnaryEngine struct {
	store tcam.Store
	width int
}

// NewUnaryEngine builds an engine over a fresh private table with the given
// capacity (0 = unbounded, the paper's ideal baseline) and installs the
// entries.
func NewUnaryEngine(name string, width, capacity int, entries []population.UnaryEntry) (*UnaryEngine, error) {
	t, err := tcam.New(name, capacity, width)
	if err != nil {
		return nil, err
	}
	return NewUnaryEngineOn(t, entries)
}

// NewUnaryEngineOn mounts an engine on an existing single-field store — a
// private table or a tenant slice of a shared calculation TCAM — and
// installs the entries.
func NewUnaryEngineOn(store tcam.Store, entries []population.UnaryEntry) (*UnaryEngine, error) {
	widths := store.FieldWidths()
	if len(widths) != 1 {
		return nil, fmt.Errorf("arith: unary engine needs a 1-field store, %q has %d", store.Name(), len(widths))
	}
	e := &UnaryEngine{store: store, width: widths[0]}
	if _, err := e.Reload(entries); err != nil {
		return nil, err
	}
	return e, nil
}

// Reload reconciles the table contents toward the given entries, returning
// the TCAM write count (the quantity the control-plane delay model charges
// for). Entries already installed with the same result cost nothing — the
// driver diffs against its shadow copy, as real switch drivers do.
//
// Reload is transactional: if any row write fails (e.g. injected driver
// faults) the previous population remains installed in full, so a lookup
// never observes a partially reloaded table.
func (e *UnaryEngine) Reload(entries []population.UnaryEntry) (int, error) {
	rows := make([]tcam.Row, len(entries))
	for i, en := range entries {
		rows[i] = tcam.RowFromPrefix(en.P, en.Result)
	}
	return e.store.ApplyRowsAtomic(rows)
}

// ReloadDelta incrementally reconciles the table: add entries are installed
// (or their action data rewritten when the prefix is already present), remove
// entries are deleted by match key (their Result is ignored). The operation
// is transactional — a failure leaves the previous population fully intact —
// and returns the TCAM write count. It returns tcam.ErrDeltaConflict when the
// caller's shadow copy diverged from the table; the caller must then fall
// back to a full Reload.
func (e *UnaryEngine) ReloadDelta(add, remove []population.UnaryEntry) (int, error) {
	upserts := make([]tcam.Row, len(add))
	for i, en := range add {
		upserts[i] = tcam.RowFromPrefix(en.P, en.Result)
	}
	deletes := make([]tcam.Row, len(remove))
	for i, en := range remove {
		deletes[i] = tcam.RowFromPrefix(en.P, nil)
	}
	return e.store.ApplyDelta(upserts, deletes)
}

// Eval looks the operand up and returns the precomputed result.
func (e *UnaryEngine) Eval(x uint64) (uint64, error) {
	en, ok := e.store.Lookup(x)
	if !ok {
		return 0, fmt.Errorf("%w: %s(%d)", ErrMiss, e.store.Name(), x)
	}
	r, ok := en.Data.(uint64)
	if !ok {
		return 0, fmt.Errorf("%w: %T", ErrResultType, en.Data)
	}
	return r, nil
}

// Scratch holds the reusable buffers the typed batch-evaluation path
// threads through the TCAM's ordinal lookup: the flat packed-key buffer
// (binary engines only) and the resolved-ordinal buffer, plus the two
// opt-in accelerations — a generation-keyed hot-key result cache
// (EnableCache) and an intra-batch operand dedup pass (EnableDedup). The
// zero value is ready to use; a caller that keeps one Scratch per replay
// worker makes every steady-state EvalBatchInto call allocation-free. A
// Scratch must not be shared by concurrent callers.
type Scratch struct {
	flat []uint64
	ords []int32

	// cache memoizes key → ordinal across batches; see tcam.LookupCache
	// for the invalidation model. It serves only the store it was armed
	// for — an engine over a different store bypasses it.
	cache        *tcam.LookupCache
	cacheEntries int

	// dedup state: a per-batch open-addressing fold of repeated operands.
	// htab maps key hashes to 1-based indices into uniq; uniq holds each
	// distinct packed key tuple once; remap holds, per sample, its tuple's
	// index into uniq.
	dedup bool
	htab  []int32
	uniq  []uint64
	remap []int32
}

// EnableCache arms the scratch with a hot-key result cache of at least
// `entries` slots in front of store. Re-arming with the same store and size
// is a no-op (the warm cache is kept); a different store or size rebinds a
// cold cache. entries <= 0, or a store that cannot be cached (no snapshot
// surface), leaves lookups uncached.
func (sc *Scratch) EnableCache(store tcam.Store, entries int) {
	if sc.cache != nil && sc.cache.Store() == store && sc.cacheEntries == entries {
		return
	}
	sc.cache = tcam.NewLookupCache(store, entries)
	sc.cacheEntries = entries
}

// EnableDedup turns on the intra-batch operand dedup pass: repeated key
// tuples within one EvalBatchInto call are looked up once and the result
// scattered to every occurrence. On heavily skewed (Zipf) batches this
// shrinks a 4096-sample batch to tens of distinct lookups; on all-unique
// batches it costs one extra pass over the keys.
func (sc *Scratch) EnableDedup() { sc.dedup = true }

// CacheStats returns the armed cache's cumulative counters (zero when no
// cache is armed).
func (sc *Scratch) CacheStats() tcam.CacheStats {
	if sc.cache == nil {
		return tcam.CacheStats{}
	}
	return sc.cache.Stats()
}

// lookupBatch resolves packed key tuples through the armed cache when it
// fronts this store, else directly. Either way the ordinal buffer is the
// scratch's reusable one and the results are bit-identical.
func (sc *Scratch) lookupBatch(store tcam.Store, flat []uint64) ([]int32, tcam.Payloads) {
	var ords []int32
	var pay tcam.Payloads
	if sc.cache != nil && sc.cache.Store() == store {
		ords, pay = sc.cache.LookupIndexBatch(flat, sc.ords)
	} else {
		ords, pay = store.LookupIndexBatch(flat, sc.ords)
	}
	sc.ords = ords
	return ords, pay
}

// fold deduplicates the packed key tuples in flat (arity values per tuple):
// on return sc.uniq holds each distinct tuple once in first-seen order,
// sc.remap[i] is sample i's tuple index into it, and the returned count is
// the number of distinct tuples. The hash table is sized to the next power
// of two above 2n and reused across batches, so steady state allocates
// nothing.
func (sc *Scratch) fold(flat []uint64, arity int) int {
	n := len(flat) / arity
	size := 4
	for size < 2*n {
		size <<= 1
	}
	if cap(sc.htab) >= size {
		sc.htab = sc.htab[:size]
		clear(sc.htab)
	} else {
		sc.htab = make([]int32, size)
	}
	if cap(sc.remap) >= n {
		sc.remap = sc.remap[:n]
	} else {
		sc.remap = make([]int32, n)
	}
	sc.uniq = sc.uniq[:0]
	mask := size - 1
	u := 0
	for i := 0; i < n; i++ {
		k0 := flat[i*arity]
		var k1 uint64
		h := k0 * 0x9E3779B97F4A7C15
		if arity == 2 {
			k1 = flat[i*arity+1]
			h ^= (k1 + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
		}
		slot := int(h>>32) & mask
		for {
			e := sc.htab[slot]
			if e == 0 {
				sc.htab[slot] = int32(u + 1)
				sc.uniq = append(sc.uniq, flat[i*arity:(i+1)*arity]...)
				sc.remap[i] = int32(u)
				u++
				break
			}
			j := int(e - 1)
			if sc.uniq[j*arity] == k0 && (arity == 1 || sc.uniq[j*arity+1] == k1) {
				sc.remap[i] = e - 1
				break
			}
			slot = (slot + 1) & mask
		}
	}
	return u
}

// scatter resolves every sample's result from its unique tuple's ordinal,
// writing positional results into dst and counting misses per occurrence —
// exactly the accounting the non-deduped path produces.
func scatter(dst []uint64, remap []int32, ords []int32, pay tcam.Payloads) (misses int) {
	for i, u := range remap {
		ord := ords[u]
		if ord < 0 {
			dst[i] = 0
			misses++
			continue
		}
		r, ok := pay.Value(ord)
		if !ok {
			dst[i] = 0
			misses++
			continue
		}
		dst[i] = r
	}
	return misses
}

// sizeU64 returns dst resized to n elements, reusing its backing array when
// the capacity allows.
func sizeU64(dst []uint64, n int) []uint64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint64, n)
}

// EvalBatch resolves a whole operand batch against one compiled table
// snapshot — the parallel-replay path. Results are positional; an operand
// that misses (or hits a corrupt entry) leaves 0 at its position and is
// counted in misses. All results come from the same committed population.
// It allocates the result slice; the hot path is EvalBatchInto.
func (e *UnaryEngine) EvalBatch(xs []uint64) (results []uint64, misses int) {
	return e.EvalBatchInto(nil, xs, nil)
}

// EvalBatchInto is EvalBatch writing into dst (reused when it has the
// capacity) and threading sc's buffers through the typed ordinal lookup, so
// a caller recycling both performs zero allocations per batch: no interface
// assertion per sample, no fresh result slice. sc may be nil, costing one
// transient ordinal buffer. Results and miss accounting are bit-identical
// to EvalBatch.
func (e *UnaryEngine) EvalBatchInto(dst []uint64, xs []uint64, sc *Scratch) (results []uint64, misses int) {
	var local Scratch
	if sc == nil {
		sc = &local
	}
	dst = sizeU64(dst, len(xs))
	if sc.dedup {
		u := sc.fold(xs, 1)
		ords, pay := sc.lookupBatch(e.store, sc.uniq[:u])
		return dst, scatter(dst, sc.remap[:len(xs)], ords, pay)
	}
	ords, pay := sc.lookupBatch(e.store, xs)
	for i, ord := range ords {
		if ord < 0 {
			dst[i] = 0
			misses++
			continue
		}
		r, ok := pay.Value(ord)
		if !ok {
			dst[i] = 0
			misses++
			continue
		}
		dst[i] = r
	}
	return dst, misses
}

// Table exposes the underlying physical table for resource accounting. It
// returns nil when the engine is mounted on a tenant slice rather than a
// private table; use Store for the backing-agnostic surface.
func (e *UnaryEngine) Table() *tcam.Table { t, _ := e.store.(*tcam.Table); return t }

// Store exposes the backing store (private table or tenant slice).
func (e *UnaryEngine) Store() tcam.Store { return e.store }

// Width returns the operand width in bits.
func (e *UnaryEngine) Width() int { return e.width }

// BinaryEngine evaluates a two-operand operation through a two-field
// calculation TCAM.
type BinaryEngine struct {
	store tcam.Store
	width int
}

// NewBinaryEngine builds a two-field engine with equal field widths and
// installs the entries.
func NewBinaryEngine(name string, width, capacity int, entries []population.BinaryEntry) (*BinaryEngine, error) {
	return NewBinaryEngineWidths(name, width, width, capacity, entries)
}

// NewBinaryEngineWidths builds a two-field engine with distinct per-field
// widths (e.g. an 8-bit rate key against a 20-bit inter-arrival key).
func NewBinaryEngineWidths(name string, widthX, widthY, capacity int, entries []population.BinaryEntry) (*BinaryEngine, error) {
	t, err := tcam.New(name, capacity, widthX, widthY)
	if err != nil {
		return nil, err
	}
	return NewBinaryEngineOn(t, entries)
}

// NewBinaryEngineOn mounts an engine on an existing two-field store — a
// private table or a tenant slice of a shared calculation TCAM — and
// installs the entries.
func NewBinaryEngineOn(store tcam.Store, entries []population.BinaryEntry) (*BinaryEngine, error) {
	widths := store.FieldWidths()
	if len(widths) != 2 {
		return nil, fmt.Errorf("arith: binary engine needs a 2-field store, %q has %d", store.Name(), len(widths))
	}
	w := widths[0]
	if widths[1] > w {
		w = widths[1]
	}
	e := &BinaryEngine{store: store, width: w}
	if _, err := e.Reload(entries); err != nil {
		return nil, err
	}
	return e, nil
}

// Reload reconciles the table contents toward the given entries, returning
// the write count (unchanged rows cost nothing). Like the unary Reload it
// is transactional: a failed reload leaves the previous population intact.
func (e *BinaryEngine) Reload(entries []population.BinaryEntry) (int, error) {
	rows := make([]tcam.Row, len(entries))
	for i, en := range entries {
		rows[i] = tcam.Row{
			Fields: []tcam.Field{tcam.FieldFromPrefix(en.X), tcam.FieldFromPrefix(en.Y)},
			Data:   en.Result,
		}
	}
	return e.store.ApplyRowsAtomic(rows)
}

// ReloadDelta is the two-field form of the unary ReloadDelta: transactional
// incremental reconciliation, with remove entries matched by key only.
func (e *BinaryEngine) ReloadDelta(add, remove []population.BinaryEntry) (int, error) {
	upserts := make([]tcam.Row, len(add))
	for i, en := range add {
		upserts[i] = tcam.Row{
			Fields: []tcam.Field{tcam.FieldFromPrefix(en.X), tcam.FieldFromPrefix(en.Y)},
			Data:   en.Result,
		}
	}
	deletes := make([]tcam.Row, len(remove))
	for i, en := range remove {
		deletes[i] = tcam.Row{
			Fields: []tcam.Field{tcam.FieldFromPrefix(en.X), tcam.FieldFromPrefix(en.Y)},
		}
	}
	return e.store.ApplyDelta(upserts, deletes)
}

// Eval looks the operand pair up and returns the precomputed result.
func (e *BinaryEngine) Eval(x, y uint64) (uint64, error) {
	en, ok := e.store.Lookup(x, y)
	if !ok {
		return 0, fmt.Errorf("%w: %s(%d, %d)", ErrMiss, e.store.Name(), x, y)
	}
	r, ok := en.Data.(uint64)
	if !ok {
		return 0, fmt.Errorf("%w: %T", ErrResultType, en.Data)
	}
	return r, nil
}

// EvalBatch is the two-operand batch evaluation: pairs (xs[i], ys[i]) are
// resolved against one compiled snapshot. Mismatched slice lengths evaluate
// the common prefix. It allocates the result slice; the hot path is
// EvalBatchInto.
func (e *BinaryEngine) EvalBatch(xs, ys []uint64) (results []uint64, misses int) {
	return e.EvalBatchInto(nil, xs, ys, nil)
}

// EvalBatchInto is EvalBatch writing into dst (reused when it has the
// capacity). Operand pairs are packed into sc's flat key buffer —
// [x0 y0 x1 y1 …] — instead of per-pair sub-slices, and resolved through
// the typed ordinal lookup, so a caller recycling dst and sc performs zero
// allocations per batch. sc may be nil, costing transient buffers. Results
// and miss accounting are bit-identical to EvalBatch.
func (e *BinaryEngine) EvalBatchInto(dst []uint64, xs, ys []uint64, sc *Scratch) (results []uint64, misses int) {
	var local Scratch
	if sc == nil {
		sc = &local
	}
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	flat := sizeU64(sc.flat, 2*n)
	sc.flat = flat
	for i := 0; i < n; i++ {
		flat[2*i], flat[2*i+1] = xs[i], ys[i]
	}
	dst = sizeU64(dst, n)
	if sc.dedup {
		u := sc.fold(flat, 2)
		ords, pay := sc.lookupBatch(e.store, sc.uniq[:2*u])
		return dst, scatter(dst, sc.remap[:n], ords, pay)
	}
	ords, pay := sc.lookupBatch(e.store, flat)
	for i, ord := range ords {
		if ord < 0 {
			dst[i] = 0
			misses++
			continue
		}
		r, ok := pay.Value(ord)
		if !ok {
			dst[i] = 0
			misses++
			continue
		}
		dst[i] = r
	}
	return dst, misses
}

// Table exposes the underlying physical table for resource accounting. It
// returns nil when the engine is mounted on a tenant slice rather than a
// private table; use Store for the backing-agnostic surface.
func (e *BinaryEngine) Table() *tcam.Table { t, _ := e.store.(*tcam.Table); return t }

// Store exposes the backing store (private table or tenant slice).
func (e *BinaryEngine) Store() tcam.Store { return e.store }

// Width returns the operand width in bits.
func (e *BinaryEngine) Width() int { return e.width }

// LogEngine performs multiplication/division through log and antilog unary
// engines plus a native addition/subtraction, the [12] pipeline realised in
// TCAM hardware terms.
type LogEngine struct {
	logT    *UnaryEngine
	antilog *UnaryEngine
	scale   uint64
}

// NewLogEngine installs the given log tables into two hardware tables with
// the stated capacities (0 = unbounded).
func NewLogEngine(name string, lt *population.LogTables, capLog, capAntilog int) (*LogEngine, error) {
	logE, err := NewUnaryEngine(name+".log", lt.Width, capLog, lt.Log)
	if err != nil {
		return nil, err
	}
	alE, err := NewUnaryEngine(name+".antilog", lt.AntilogWidth, capAntilog, lt.Antilog)
	if err != nil {
		return nil, err
	}
	return &LogEngine{logT: logE, antilog: alE, scale: lt.Scale}, nil
}

// Multiply evaluates x*y as antilog(log x + log y).
func (e *LogEngine) Multiply(x, y uint64) (uint64, error) {
	if x == 0 || y == 0 {
		return 0, nil
	}
	lx, err := e.logT.Eval(x)
	if err != nil {
		return 0, err
	}
	ly, err := e.logT.Eval(y)
	if err != nil {
		return 0, err
	}
	return e.antilog.Eval(lx + ly)
}

// Divide evaluates x/y as antilog(log x − log y).
func (e *LogEngine) Divide(x, y uint64) (uint64, error) {
	if y == 0 {
		return 0, fmt.Errorf("%w: divide by zero", ErrMiss)
	}
	if x == 0 {
		return 0, nil
	}
	lx, err := e.logT.Eval(x)
	if err != nil {
		return 0, err
	}
	ly, err := e.logT.Eval(y)
	if err != nil {
		return 0, err
	}
	if ly >= lx {
		if ly-lx > e.scale/2 {
			return 0, nil
		}
		return 1, nil
	}
	return e.antilog.Eval(lx - ly)
}

// TotalEntries returns the combined TCAM footprint.
func (e *LogEngine) TotalEntries() int { return e.logT.Table().Len() + e.antilog.Table().Len() }
