package arith

import (
	"math"
)

// RelError returns |approx − exact| / max(1, exact), the relative error
// metric used in §V-A3/4. The max(1, ·) denominator keeps zero results from
// producing infinities.
func RelError(approx, exact uint64) float64 {
	denom := float64(exact)
	if denom < 1 {
		denom = 1
	}
	var diff float64
	if approx >= exact {
		diff = float64(approx - exact)
	} else {
		diff = float64(exact - approx)
	}
	return diff / denom
}

// ErrorSummary aggregates lookup-error statistics over a sample set.
type ErrorSummary struct {
	// Avg is the mean relative error.
	Avg float64
	// Worst is the maximum relative error.
	Worst float64
	// Misses counts samples the table could not answer; they are excluded
	// from Avg/Worst.
	Misses int
	// N counts answered samples.
	N int
}

// AvgPercent returns the mean error in percent, the unit the paper plots.
func (s ErrorSummary) AvgPercent() float64 { return s.Avg * 100 }

// MeasureUnary evaluates each sample through eval and compares against the
// exact operation.
func MeasureUnary(eval func(uint64) (uint64, error), op UnaryOp, samples []uint64) ErrorSummary {
	var out ErrorSummary
	for _, x := range samples {
		approx, err := eval(x)
		if err != nil {
			out.Misses++
			continue
		}
		e := RelError(approx, op.Exact(x))
		out.Avg += e
		if e > out.Worst {
			out.Worst = e
		}
		out.N++
	}
	if out.N > 0 {
		out.Avg /= float64(out.N)
	}
	return out
}

// MeasureBinary is MeasureUnary for two-operand operations over paired
// samples (xs[i], ys[i]).
func MeasureBinary(eval func(x, y uint64) (uint64, error), op BinaryOp, xs, ys []uint64) ErrorSummary {
	var out ErrorSummary
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		approx, err := eval(xs[i], ys[i])
		if err != nil {
			out.Misses++
			continue
		}
		e := RelError(approx, op.Exact(xs[i], ys[i]))
		out.Avg += e
		if e > out.Worst {
			out.Worst = e
		}
		out.N++
	}
	if out.N > 0 {
		out.Avg /= float64(out.N)
	}
	return out
}

// PropagationResult records how error accumulates when a function's output
// is fed back as its input (§V-A4): PerIter[k] is the relative error after
// k+1 applications; Max is the peak across iterations.
type PropagationResult struct {
	PerIter []float64
	Max     float64
	Final   float64
}

// Propagate iterates the operation iters times through the approximate
// evaluator, in parallel with the exact reference chain, both saturating at
// domainMax (as the switch's bounded registers force), and reports the
// per-iteration relative error. A lookup miss clamps the approximate value
// to domainMax, matching the default action of an out-of-range operand.
func Propagate(eval func(uint64) (uint64, error), op UnaryOp, x0, domainMax uint64, iters int) PropagationResult {
	res := PropagationResult{PerIter: make([]float64, 0, iters)}
	approx, exact := x0, x0
	for i := 0; i < iters; i++ {
		exact = op.Exact(exact)
		if exact > domainMax {
			exact = domainMax
		}
		a, err := eval(approx)
		if err != nil {
			a = domainMax
		}
		if a > domainMax {
			a = domainMax
		}
		approx = a
		e := RelError(approx, exact)
		res.PerIter = append(res.PerIter, e)
		if e > res.Max {
			res.Max = e
		}
	}
	if len(res.PerIter) > 0 {
		res.Final = res.PerIter[len(res.PerIter)-1]
	}
	return res
}

// MeanPropagation averages propagation error curves over many seeds,
// returning the mean per-iteration errors and the mean of the peaks.
func MeanPropagation(eval func(uint64) (uint64, error), op UnaryOp, seeds []uint64, domainMax uint64, iters int) (perIter []float64, meanMax float64) {
	perIter = make([]float64, iters)
	if len(seeds) == 0 {
		return perIter, 0
	}
	for _, x0 := range seeds {
		r := Propagate(eval, op, x0, domainMax, iters)
		for i, e := range r.PerIter {
			perIter[i] += e
		}
		meanMax += r.Max
	}
	inv := 1 / float64(len(seeds))
	for i := range perIter {
		perIter[i] *= inv
	}
	return perIter, meanMax * inv
}

// GeoMeanError returns the geometric mean of (1 + error) minus one, a
// stable aggregate when errors span orders of magnitude.
func GeoMeanError(errs []float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range errs {
		sum += math.Log1p(e)
	}
	return math.Expm1(sum / float64(len(errs)))
}
