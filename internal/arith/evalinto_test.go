package arith

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/population"
)

// TestEvalBatchIntoReusesBuffers: repeated calls through one dst/Scratch
// pair must return results bit-identical to the allocating EvalBatch, reuse
// the caller's backing arrays once they are large enough, and allocate
// nothing in steady state.
func TestEvalBatchIntoReusesBuffers(t *testing.T) {
	uEntries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	ue, err := NewUnaryEngine("sq", 8, 8, uEntries)
	if err != nil {
		t.Fatal(err)
	}
	bEntries, err := population.NaiveBinary(OpMul.Func(), 6, 64, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBinaryEngine("mul", 6, 64, bEntries)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	var sc Scratch
	var dst []uint64
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(300)
		xs := make([]uint64, n)
		ys := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(rng.Intn(256)) // half the unary domain misses
			ys[i] = uint64(rng.Intn(64))
		}

		wantU, wantUM := ue.EvalBatch(xs)
		dst, gotUM := ue.EvalBatchInto(dst, xs, &sc)
		if gotUM != wantUM {
			t.Fatalf("round %d: unary misses %d, want %d", round, gotUM, wantUM)
		}
		for i := range xs {
			if dst[i] != wantU[i] {
				t.Fatalf("round %d: unary result[%d] = %d, want %d", round, i, dst[i], wantU[i])
			}
		}

		xb := make([]uint64, n)
		for i := range xb {
			xb[i] = uint64(rng.Intn(64))
		}
		wantB, wantBM := be.EvalBatch(xb, ys)
		dst, gotBM := be.EvalBatchInto(dst, xb, ys, &sc)
		if gotBM != wantBM {
			t.Fatalf("round %d: binary misses %d, want %d", round, gotBM, wantBM)
		}
		for i := range xb {
			if dst[i] != wantB[i] {
				t.Fatalf("round %d: binary result[%d] = %d, want %d", round, i, dst[i], wantB[i])
			}
		}
	}

	// Steady state: buffers sized for the largest batch, no allocation left.
	xs := make([]uint64, 256)
	ys := make([]uint64, 256)
	for i := range xs {
		xs[i], ys[i] = uint64(i%64), uint64((i*7)%64)
	}
	ue.EvalBatchInto(dst, xs, &sc)
	be.EvalBatchInto(dst, xs, ys, &sc)
	allocs := testing.AllocsPerRun(50, func() {
		dst, _ = ue.EvalBatchInto(dst, xs, &sc)
		dst, _ = be.EvalBatchInto(dst, xs, ys, &sc)
	})
	if allocs != 0 {
		t.Errorf("steady-state EvalBatchInto allocates %.1f objects/run, want 0", allocs)
	}
}

// TestEvalBatchIntoNilScratch: a nil Scratch must still work (engine falls
// back to a call-local buffer set) and match the allocating path.
func TestEvalBatchIntoNilScratch(t *testing.T) {
	entries, err := population.NaiveUnaryRange(OpSquare.Func(), 8, 8, 0, 63, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewUnaryEngine("sq", 8, 8, entries)
	if err != nil {
		t.Fatal(err)
	}
	xs := []uint64{0, 5, 63, 64, 200}
	want, wantM := e.EvalBatch(xs)
	got, gotM := e.EvalBatchInto(nil, xs, nil)
	if gotM != wantM {
		t.Fatalf("misses = %d, want %d", gotM, wantM)
	}
	for i := range xs {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
