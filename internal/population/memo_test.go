package population

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/ada-repro/ada/internal/trie"
)

// mutate applies one random leaf-hits / reshape step to tr.
func mutate(tr *trie.Trie, rng *rand.Rand) {
	switch rng.Intn(10) {
	case 0:
		tr.Rebalance(0.2)
	case 1:
		if tr.NumLeaves() < 128 {
			tr.Expand()
		}
	case 2:
		tr.DecayHits()
	case 3:
		tr.ResetHits()
	default:
		hits := make([]uint64, tr.NumLeaves())
		for i := range hits {
			// Zipf-ish skew so rebalances actually fire.
			hits[i] = uint64(rng.Intn(1 + 1000/(1+i*i)))
		}
		if rng.Intn(2) == 0 {
			_ = tr.SetLeafHits(hits)
		} else {
			_ = tr.AddLeafHits(hits)
		}
	}
}

// TestADAAllocateCachedDifferential drives randomized mutation sequences and
// asserts the cached allocator is byte-identical to the plain one at every
// step, across commit cadences and budget changes.
func TestADAAllocateCachedDifferential(t *testing.T) {
	for _, commitEvery := range []int{1, 3, 0} { // 0 = never commit
		rng := rand.New(rand.NewSource(42))
		tr, err := trie.NewInitial(16, 10)
		if err != nil {
			t.Fatal(err)
		}
		var cache AllocCache
		budget := 64
		for step := 0; step < 300; step++ {
			if rng.Intn(4) != 0 { // some rounds observe an unchanged trie
				mutate(tr, rng)
			}
			if rng.Intn(20) == 0 {
				budget = 16 << rng.Intn(4)
			}
			want, err := ADAAllocate(tr, budget)
			if err != nil {
				t.Fatalf("commitEvery=%d step %d: ADAAllocate: %v", commitEvery, step, err)
			}
			got, _, err := ADAAllocateCached(tr, budget, &cache)
			if err != nil {
				t.Fatalf("commitEvery=%d step %d: ADAAllocateCached: %v", commitEvery, step, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("commitEvery=%d step %d: allocations diverge\n got: %v\nwant: %v",
					commitEvery, step, got, want)
			}
			if commitEvery > 0 && step%commitEvery == 0 {
				tr.CommitGeneration()
			}
		}
	}
}

// TestADAAllocateCachedSurvivesForeignCommit covers the memo-staleness
// hazard: the trie commits at a state the cache never saw (e.g. a degraded
// round dropped the shadow trie), so the dirty set no longer describes the
// delta from the cached state and mass reuse must be refused.
func TestADAAllocateCachedSurvivesForeignCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, err := trie.NewInitial(16, 10)
	if err != nil {
		t.Fatal(err)
	}
	var cache AllocCache
	for step := 0; step < 200; step++ {
		mutate(tr, rng)
		if rng.Intn(3) == 0 {
			// Mutate then commit immediately: the commit point is a state
			// the cache has not observed.
			mutate(tr, rng)
			tr.CommitGeneration()
		}
		want, err := ADAAllocate(tr, 48)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ADAAllocateCached(tr, 48, &cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: allocations diverge after foreign commit", step)
		}
	}
}

func TestADAUnaryMemoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, err := trie.NewInitial(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x uint64) uint64 { return x * x }
	var memo UnaryMemo
	for step := 0; step < 300; step++ {
		if rng.Intn(4) != 0 {
			mutate(tr, rng)
		}
		want, err := ADAUnary(tr, f, 96, Midpoint)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ADAUnaryMemo(tr, f, 96, Midpoint, &memo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Entries, want) {
			t.Fatalf("step %d: memoized entries diverge", step)
		}
		if res.Computed+res.Reused != len(want) {
			t.Fatalf("step %d: computed %d + reused %d != %d entries",
				step, res.Computed, res.Reused, len(want))
		}
		if len(res.Results) != len(want) {
			t.Fatalf("step %d: results map has %d keys, want %d", step, len(res.Results), len(want))
		}
		for _, e := range want {
			if got, ok := res.Results[e.P]; !ok || got != e.Result {
				t.Fatalf("step %d: Results[%v] = %d,%v, want %d", step, e.P, got, ok, e.Result)
			}
		}
		if rng.Intn(3) == 0 {
			tr.CommitGeneration()
		}
	}
}

func TestADAUnaryMemoConvergedRoundComputesNothing(t *testing.T) {
	tr, err := trie.NewInitial(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]uint64, tr.NumLeaves())
	for i := range hits {
		hits[i] = uint64(1 + i*i)
	}
	if err := tr.SetLeafHits(hits); err != nil {
		t.Fatal(err)
	}
	f := func(x uint64) uint64 { return 2 * x }
	var memo UnaryMemo
	first, err := ADAUnaryMemo(tr, f, 64, Midpoint, &memo)
	if err != nil {
		t.Fatal(err)
	}
	if first.Computed == 0 {
		t.Fatal("first build computed nothing")
	}
	tr.CommitGeneration()
	second, err := ADAUnaryMemo(tr, f, 64, Midpoint, &memo)
	if err != nil {
		t.Fatal(err)
	}
	if second.Computed != 0 || !second.AllocReused {
		t.Fatalf("converged round recomputed: computed=%d allocReused=%v",
			second.Computed, second.AllocReused)
	}
	if second.Reused != len(first.Entries) {
		t.Fatalf("converged round reused %d, want %d", second.Reused, len(first.Entries))
	}
}

func TestADABinaryMemoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tx, err := trie.NewInitial(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := trie.NewInitial(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint64) uint64 { return x*1000 + y }
	var memo BinaryMemo
	for step := 0; step < 150; step++ {
		if rng.Intn(3) != 0 {
			mutate(tx, rng)
		}
		if rng.Intn(3) != 0 {
			mutate(ty, rng)
		}
		want, err := ADABinary(tx, ty, f, 100, Midpoint)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ADABinaryMemo(tx, ty, f, 100, Midpoint, &memo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Entries, want) {
			t.Fatalf("step %d: memoized binary entries diverge", step)
		}
		if res.Computed+res.Reused != len(want) {
			t.Fatalf("step %d: computed+reused != entries", step)
		}
		if rng.Intn(3) == 0 {
			tx.CommitGeneration()
		}
		if rng.Intn(3) == 0 {
			ty.CommitGeneration()
		}
	}
	// Converged: no mutation since last build.
	res, err := ADABinaryMemo(tx, ty, f, 100, Midpoint, &memo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 0 || !res.AllocReused {
		t.Fatalf("converged binary round recomputed: computed=%d allocReused=%v",
			res.Computed, res.AllocReused)
	}
}

func TestUnaryMemoRepChangeInvalidates(t *testing.T) {
	tr, err := trie.NewInitial(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLeafHits([]uint64{5, 9, 100, 3, 7, 1, 0, 44}); err != nil {
		t.Fatal(err)
	}
	f := func(x uint64) uint64 { return x + 1 }
	var memo UnaryMemo
	for _, rep := range []Representative{Midpoint, GeoMean, Midpoint} {
		want, err := ADAUnary(tr, f, 32, rep)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ADAUnaryMemo(tr, f, 32, rep, &memo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Entries, want) {
			t.Fatalf("rep %v: memoized entries diverge", rep)
		}
	}
}
