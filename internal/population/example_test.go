package population_test

import (
	"fmt"

	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/trie"
)

// ExampleADAUnary builds a distribution-aware calculation table: the hot
// interval around the observed operands receives fine entries while the
// cold remainder collapses into coarse backstops.
func ExampleADAUnary() {
	tr, err := trie.NewInitial(8, 8) // 8 monitoring bins over 8-bit operands
	if err != nil {
		fmt.Println(err)
		return
	}
	// The data plane observed operands clustered at 40–47; several control
	// rounds of Algorithm 2 zoom the bins in.
	for round := 0; round < 4; round++ {
		tr.ResetHits()
		for i := 0; i < 100; i++ {
			tr.Record(uint64(40 + i%8))
		}
		tr.Rebalance(0.20)
	}

	square := func(x uint64) uint64 { return x * x }
	entries, err := population.ADAUnary(tr, square, 8, population.Midpoint)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("entries: %d (within budget 8)\n", len(entries))
	lookup, _ := population.LookupEntry(entries, 44)
	fmt.Printf("lookup 44 resolves inside [40,47]: %v\n",
		lookup.P.Lo() >= 40 && lookup.P.Hi() <= 47)
	fmt.Printf("its result is 44^2 within 10%%: %v\n",
		float64(lookup.Result) > 0.9*44*44 && float64(lookup.Result) < 1.1*44*44)
	// Output:
	// entries: 8 (within budget 8)
	// lookup 44 resolves inside [40,47]: true
	// its result is 44^2 within 10%: true
}

// ExampleSigBitsUnary shows the paper's §II-A baseline form
// 0^p 1 (0|1)^s x^r: interval width grows with operand magnitude.
func ExampleSigBitsUnary() {
	double := func(x uint64) uint64 { return 2 * x }
	entries, err := population.SigBitsUnary(double, 8, 1, population.Midpoint)
	if err != nil {
		fmt.Println(err)
		return
	}
	small, _ := population.LookupEntry(entries, 5)
	large, _ := population.LookupEntry(entries, 200)
	fmt.Printf("entry at 5 covers %d values; entry at 200 covers %d values\n",
		small.P.Size(), large.P.Size())
	// Output:
	// entry at 5 covers 2 values; entry at 200 covers 64 values
}
