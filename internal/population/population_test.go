package population

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/trie"
)

func square(x uint64) uint64 { return x * x }
func double(x uint64) uint64 { return 2 * x }
func mul(x, y uint64) uint64 { return x * y }
func ident(x uint64) uint64  { return x }
func sum(x, y uint64) uint64 { return x + y }
func clamp(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((uint64(1) << uint(w)) - 1)
}

func TestSubdivide(t *testing.T) {
	root, _ := bitstr.Root(4)
	tests := []struct {
		m    int
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {16, 16}, {100, 16},
	}
	for _, tt := range tests {
		got := Subdivide(root, tt.m)
		if len(got) != tt.want {
			t.Errorf("Subdivide(root4, %d) = %d prefixes, want %d", tt.m, len(got), tt.want)
		}
		if !bitstr.Partition(got) {
			t.Errorf("Subdivide(root4, %d) does not tile the domain: %v", tt.m, got)
		}
	}
}

func TestSubdivideBalanced(t *testing.T) {
	root, _ := bitstr.Root(8)
	got := Subdivide(root, 8)
	for _, p := range got {
		if p.Bits() != 3 {
			t.Errorf("power-of-two subdivision must be uniform; got %v", got)
			break
		}
	}
}

func TestNaiveUnary(t *testing.T) {
	entries, err := NaiveUnary(square, 8, 16, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("got %d entries, want 16", len(entries))
	}
	if !CoversDomain(entries) {
		t.Fatal("naive entries must tile the domain")
	}
	// Every entry's result must equal f(midpoint).
	for _, e := range entries {
		if e.Result != square(e.P.Midpoint()) {
			t.Errorf("entry %v result %d, want %d", e.P, e.Result, square(e.P.Midpoint()))
		}
	}
}

func TestNaiveUnaryErrors(t *testing.T) {
	if _, err := NaiveUnary(square, 0, 4, Midpoint); !errors.Is(err, ErrWidth) {
		t.Errorf("width 0: %v", err)
	}
	if _, err := NaiveUnary(square, 8, 0, Midpoint); !errors.Is(err, ErrBudget) {
		t.Errorf("budget 0: %v", err)
	}
}

func TestNaiveUnaryRange(t *testing.T) {
	// Working range [0, 99] of a 16-bit domain with 32 entries: all entries
	// must live inside the range cover and tile it exactly.
	entries, err := NaiveUnaryRange(square, 16, 32, 0, 99, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 32 {
		t.Fatalf("budget exceeded: %d", len(entries))
	}
	var lo, hi uint64 = math.MaxUint64, 0
	for _, e := range entries {
		if e.P.Lo() < lo {
			lo = e.P.Lo()
		}
		if e.P.Hi() > hi {
			hi = e.P.Hi()
		}
	}
	if lo != 0 || hi < 99 || hi > 127 {
		t.Errorf("cover spans [%d, %d], want [0, ~99..127]", lo, hi)
	}
	if _, err := NaiveUnaryRange(square, 16, 1, 1, 6, Midpoint); err == nil {
		t.Error("budget below base cover size: want error")
	}
	if _, err := NaiveUnaryRange(square, 16, 8, 9, 2, Midpoint); !errors.Is(err, ErrRange) {
		t.Errorf("inverted range: %v", err)
	}
}

func TestNaiveBinary(t *testing.T) {
	entries, err := NaiveBinary(mul, 4, 16, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 { // 4 x 4
		t.Fatalf("got %d entries, want 16", len(entries))
	}
	// Every (x, y) pair in the domain must be covered by exactly one entry.
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			hits := 0
			for _, e := range entries {
				if e.X.Contains(x) && e.Y.Contains(y) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("(%d,%d) covered by %d entries", x, y, hits)
			}
		}
	}
	if _, err := NaiveBinary(mul, 0, 4, Midpoint); !errors.Is(err, ErrWidth) {
		t.Errorf("width 0: %v", err)
	}
	if _, err := NaiveBinary(mul, 4, 0, Midpoint); !errors.Is(err, ErrBudget) {
		t.Errorf("budget 0: %v", err)
	}
}

func TestApportion(t *testing.T) {
	got := apportion([]float64{3, 1}, 4, 8)
	if got[0]+got[1] != 8 {
		t.Fatalf("apportion total = %d, want 8", got[0]+got[1])
	}
	if got[0] < got[1] {
		t.Errorf("heavier weight received fewer entries: %v", got)
	}
	// Zero weights fall back to equal shares, one minimum each.
	got = apportion([]float64{0, 0, 0}, 0, 3)
	for i, g := range got {
		if g != 1 {
			t.Errorf("equal-share alloc[%d] = %d, want 1", i, g)
		}
	}
}

// TestApportionDoesNotMutateWeights pins the aliasing fix: the zero-total
// fallback must not rewrite the caller's weights slice in place.
func TestApportionDoesNotMutateWeights(t *testing.T) {
	weights := []float64{0, 0, 0}
	apportion(weights, 0, 6)
	for i, w := range weights {
		if w != 0 {
			t.Fatalf("weights[%d] mutated to %v; apportion must not alias its input", i, w)
		}
	}
}

// TestApportionLeftoverDeterminism: the sorted largest-remainder handout
// must match the reference repeated-max-scan, including its lower-index tie
// break, so populations stay reproducible across the refactor.
func TestApportionLeftoverDeterminism(t *testing.T) {
	referenceApportion := func(weights []float64, total float64, budget int) []int {
		n := len(weights)
		out := make([]int, n)
		remaining := budget - n
		if remaining < 0 {
			remaining = 0
		}
		fracs := make([]float64, n)
		used := 0
		for i, w := range weights {
			share := float64(remaining) * w / total
			fl := int(math.Floor(share))
			out[i] = 1 + fl
			used += fl
			fracs[i] = share - float64(fl)
		}
		for left := remaining - used; left > 0; left-- {
			best := 0
			for j := 1; j < n; j++ {
				if fracs[j] > fracs[best] {
					best = j
				}
			}
			out[best]++
			fracs[best] = -1
		}
		return out
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		weights := make([]float64, n)
		total := 0.0
		for i := range weights {
			// Quantized weights force remainder ties to exercise the
			// tie-break path.
			weights[i] = float64(rng.Intn(5))
			total += weights[i]
		}
		if total == 0 {
			continue
		}
		budget := n + rng.Intn(3*n)
		got := apportion(weights, total, budget)
		want := referenceApportion(weights, total, budget)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: apportion(%v, %v, %d) = %v, reference %v",
					trial, weights, total, budget, got, want)
			}
		}
		sum := 0
		for _, g := range got {
			sum += g
		}
		if sum != budget {
			t.Fatalf("trial %d: allocated %d of budget %d", trial, sum, budget)
		}
	}
}

func TestADAUnaryProportionality(t *testing.T) {
	// Build a trie where bin 01x is overwhelmingly hot; ADA must assign it
	// far more entries than the cold bins.
	tr, err := trie.NewInitial(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLeafHits([]uint64{1, 1000, 1, 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := ADAUnary(tr, square, 64, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 64 {
		t.Fatalf("budget exceeded: %d entries", len(entries))
	}
	if !CoversDomain(entries) {
		t.Fatal("ADA entries must tile the domain")
	}
	hot, cold := 0, 0
	hotBin := tr.Leaves()[1].Prefix
	coldBin := tr.Leaves()[3].Prefix
	for _, e := range entries {
		if hotBin.ContainsPrefix(e.P) {
			hot++
		}
		if coldBin.ContainsPrefix(e.P) {
			cold++
		}
	}
	if hot < 8*cold {
		t.Errorf("hot bin got %d entries, cold got %d; want strong skew", hot, cold)
	}
}

func TestADAUnaryNoData(t *testing.T) {
	// With no hits anywhere, Algorithm 3 falls back to w = 0.5 per side:
	// the result must be the uniform population.
	tr, _ := trie.NewInitial(4, 6)
	entries, err := ADAUnary(tr, ident, 16, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("got %d entries, want 16", len(entries))
	}
	if !CoversDomain(entries) {
		t.Fatal("must tile the domain")
	}
	for _, e := range entries {
		if e.P.Bits() != 4 {
			t.Errorf("no-data population must be uniform, got %v", e.P)
		}
	}
}

func TestADAUnaryBudgetOne(t *testing.T) {
	tr, _ := trie.NewInitial(4, 6)
	entries, err := ADAUnary(tr, ident, 1, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].P.Bits() != 0 {
		t.Fatalf("budget 1 must yield the root entry, got %v", entries)
	}
	if _, err := ADAUnary(tr, ident, 0, Midpoint); !errors.Is(err, ErrBudget) {
		t.Errorf("budget 0: %v", err)
	}
}

func TestADABinaryCoverage(t *testing.T) {
	tx, _ := trie.NewInitial(4, 4)
	ty, _ := trie.NewInitial(4, 4)
	if err := tx.SetLeafHits([]uint64{100, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := ty.SetLeafHits([]uint64{1, 1, 1, 100}); err != nil {
		t.Fatal(err)
	}
	entries, err := ADABinary(tx, ty, sum, 64, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 64 {
		t.Fatalf("budget exceeded: %d", len(entries))
	}
	// ADA covers may nest (LPM catch-alls), so every pair must be covered by
	// at least one entry; hardware resolution picks the deepest.
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			hits := 0
			for _, e := range entries {
				if e.X.Contains(x) && e.Y.Contains(y) {
					hits++
				}
			}
			if hits == 0 {
				t.Fatalf("(%d,%d) uncovered", x, y)
			}
		}
	}
	if _, err := ADABinary(tx, ty, sum, 0, Midpoint); !errors.Is(err, ErrBudget) {
		t.Errorf("budget 0: %v", err)
	}
}

// avgRelError measures mean relative error of a unary population against the
// exact function over samples.
func avgRelError(entries []UnaryEntry, f UnaryFunc, samples []uint64) float64 {
	total := 0.0
	for _, x := range samples {
		e, ok := lookupSorted(entries, x)
		if !ok {
			total += 1
			continue
		}
		exact := f(x)
		if exact == 0 {
			continue
		}
		total += math.Abs(float64(e.Result)-float64(exact)) / float64(exact)
	}
	return total / float64(len(samples))
}

func TestADABeatsNaiveOnSkewedOperands(t *testing.T) {
	// The paper's core claim: with the same entry budget, distribution-aware
	// population yields lower average error than the naive baseline when
	// operands are skewed.
	const width, budget = 16, 32
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 180}, Lo: 0, Hi: 1 << width},
		1<<width-1, 7)
	train := sampler.Draw(20000)
	test := sampler.Draw(20000)

	tr, _ := trie.NewInitial(12, width)
	for round := 0; round < 40; round++ {
		tr.ResetHits()
		tr.RecordAll(train[:2000])
		for i := 0; i < 4 && tr.Rebalance(0.20); i++ {
		}
	}
	tr.ResetHits()
	tr.RecordAll(train)

	adaEntries, err := ADAUnary(tr, square, budget, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	naiveEntries, err := NaiveUnary(square, width, budget, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	adaErr := avgRelError(adaEntries, square, test)
	naiveErr := avgRelError(naiveEntries, square, test)
	if adaErr >= naiveErr/2 {
		t.Errorf("ADA error %.4f not well below naive %.4f", adaErr, naiveErr)
	}
}

func TestErrorGrowsWithWildcardedMagnitude(t *testing.T) {
	// §II-A: under the 0^p 1 (0|1)^s x^r population, interval width grows
	// with magnitude, so the worst-case x² error inside a large operand's
	// bin exceeds that of a small operand's bin.
	entries, err := SigBitsUnary(square, 16, 1, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	worstIn := func(x uint64) float64 {
		e, ok := lookupSorted(entries, x)
		if !ok {
			t.Fatalf("miss at %d", x)
		}
		worst := 0.0
		for v := e.P.Lo(); v <= e.P.Hi(); v++ {
			exact := float64(square(v))
			if exact == 0 {
				continue
			}
			if rel := math.Abs(float64(e.Result)-exact) / exact; rel > worst {
				worst = rel
			}
		}
		return worst
	}
	small, large := worstIn(4), worstIn(8192)
	if large <= small {
		t.Errorf("worst-case error must grow with magnitude: err(4-bin)=%.3f err(8192-bin)=%.3f",
			small, large)
	}
}

func TestGeoMeanRepresentativeHelpsMultiplicativeError(t *testing.T) {
	const width, budget = 16, 16
	rng := rand.New(rand.NewSource(9))
	samples := make([]uint64, 20000)
	for i := range samples {
		samples[i] = 1 + uint64(rng.Intn(1<<width-1))
	}
	mid, err := NaiveUnary(square, width, budget, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := NaiveUnary(square, width, budget, GeoMean)
	if err != nil {
		t.Fatal(err)
	}
	if g, m := avgRelError(geo, square, samples), avgRelError(mid, square, samples); g >= m {
		t.Errorf("geomean error %.4f not below midpoint %.4f", g, m)
	}
}

func TestRepresentativeString(t *testing.T) {
	if Midpoint.String() != "midpoint" || GeoMean.String() != "geomean" {
		t.Error("Representative.String misrendered")
	}
	if Representative(99).String() == "" {
		t.Error("unknown representative must render something")
	}
}

func TestCoversDomainNegative(t *testing.T) {
	if CoversDomain(nil) {
		t.Error("empty set must not cover")
	}
	p, _ := bitstr.Parse("0xx")
	if CoversDomain([]UnaryEntry{{P: p}}) {
		t.Error("half domain must not cover")
	}
}

// Property: ADAAllocate output always tiles the domain and respects budget,
// for random tries and budgets.
func TestQuickADAAllocateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		width := 2 + rng.Intn(12)
		m := 1 + rng.Intn(16)
		tr, err := trie.NewInitial(m, width)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			tr.Record(rng.Uint64())
		}
		for i := 0; i < 5; i++ {
			tr.Rebalance(0.2)
		}
		budget := 1 + rng.Intn(64)
		ps, err := ADAAllocate(tr, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) > budget {
			t.Fatalf("trial %d: %d prefixes exceed budget %d", trial, len(ps), budget)
		}
		entries := make([]UnaryEntry, len(ps))
		seen := make(map[bitstr.Prefix]bool, len(ps))
		for i, p := range ps {
			if seen[p] {
				t.Fatalf("trial %d: duplicate prefix %v", trial, p)
			}
			seen[p] = true
			entries[i] = UnaryEntry{P: p}
		}
		if !CoversDomain(entries) {
			t.Fatalf("trial %d: allocation does not cover the domain", trial)
		}
		// Every probe must resolve to a containing prefix via LPM.
		for probe := 0; probe < 20; probe++ {
			v := rng.Uint64() & (uint64(1)<<uint(width) - 1)
			e, ok := lookupSorted(entries, v)
			if !ok || !e.P.Contains(v) {
				t.Fatalf("trial %d: LPM lookup of %d failed (ok=%v)", trial, v, ok)
			}
		}
	}
}

func TestClampHelper(t *testing.T) {
	if clamp(0x1FF, 8) != 0xFF {
		t.Error("clamp failed")
	}
	if clamp(42, 64) != 42 {
		t.Error("clamp 64 failed")
	}
}
