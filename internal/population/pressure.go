package population

import (
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/trie"
)

// Pressure is the residual-error estimate of an Algorithm 3 population at a
// given budget — the gradient signal the tenant arbiter trades entries on.
// Units are hits × relative error: an operation whose traffic lands in
// regions that are still coarse scores high, one whose hot regions are fully
// specified (or that sees no traffic) scores near zero.
type Pressure struct {
	// Total is Σ mass(p)·relHalfWidth(p) over the allocated prefixes: the
	// mass-weighted relative quantisation error the population leaves on
	// the table at this budget.
	Total float64
	// Marginal is the largest single term — the error the next budget
	// entry would attack (splitting that region halves its term), i.e. an
	// estimate of d(error)/d(budget) at the current allocation.
	Marginal float64
	// Hits is the total observed hit mass behind the estimate.
	Hits uint64
}

// relHalfWidth is the relative half-width of a prefix interval: the expected
// relative distance of an operand in p from its representative midpoint.
// Fully specified prefixes score zero — their result is exact.
func relHalfWidth(p bitstr.Prefix) float64 {
	if p.WildBits() == 0 {
		return 0
	}
	mid := float64(p.Midpoint())
	if mid < 1 {
		mid = 1
	}
	return float64(p.Size()) / 2 / mid
}

// UnaryErrorPressure runs Algorithm 3's allocation at the given budget and
// scores the residual per-prefix error terms. It does not touch the table —
// the allocation is recomputed from the monitoring trie, so the estimate
// reflects the traffic the next round would populate for.
func UnaryErrorPressure(t *trie.Trie, budget int) (Pressure, error) {
	prefixes, err := ADAAllocate(t, budget)
	if err != nil {
		return Pressure{}, err
	}
	leaves := t.Leaves()
	pr := Pressure{Hits: t.TotalHits()}
	for _, p := range prefixes {
		rw := relHalfWidth(p)
		if rw == 0 {
			continue
		}
		m := massWithin(leaves, p)
		if m == 0 {
			continue
		}
		term := m * rw
		pr.Total += term
		if term > pr.Marginal {
			pr.Marginal = term
		}
	}
	return pr, nil
}

// BinaryErrorPressure scores a two-operand tenant: the joint budget is
// factored into per-side budgets exactly as ADABinary would, and the sides'
// pressures add (relative errors of a product/quotient compose additively to
// first order).
func BinaryErrorPressure(tx, ty *trie.Trie, budget int) (Pressure, error) {
	mx, my := BinarySideBudgets(tx, ty, budget)
	px, err := UnaryErrorPressure(tx, mx)
	if err != nil {
		return Pressure{}, err
	}
	py, err := UnaryErrorPressure(ty, my)
	if err != nil {
		return Pressure{}, err
	}
	pr := Pressure{Total: px.Total + py.Total, Marginal: px.Marginal, Hits: px.Hits + py.Hits}
	if py.Marginal > pr.Marginal {
		pr.Marginal = py.Marginal
	}
	return pr, nil
}

// Apportion splits budget across weights (each bucket gets at least one
// share) using the largest-remainder method; a non-positive total falls back
// to equal shares. It is the same division Algorithm 3 uses to tile entries
// inside a range cover, exported for the tenant arbiter's cross-operation
// budget split.
func Apportion(weights []float64, total float64, budget int) []int {
	return apportion(weights, total, budget)
}
