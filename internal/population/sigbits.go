package population

import (
	"fmt"

	"github.com/ada-repro/ada/internal/bitstr"
)

// SigBitsUnary builds the wildcard population of §II-A, the form used by
// Sharma et al. [12] and Nimble [10]: every entry is 0^p 1 (0|1)^s x^r — a
// leading-one anchor followed by s significant bits and wildcards. Interval
// width therefore grows with operand magnitude, which is exactly why the
// paper observes larger errors for larger values. One extra entry matches
// the exact value zero.
//
// Table size is 1 + Σ_{pos=0}^{width-1} 2^min(s, pos), growing exponentially
// in s (paper Fig 7b).
func SigBitsUnary(f UnaryFunc, width, s int, rep Representative) ([]UnaryEntry, error) {
	prefixes, err := SigBitsPrefixes(width, s)
	if err != nil {
		return nil, err
	}
	out := make([]UnaryEntry, len(prefixes))
	for i, p := range prefixes {
		out[i] = UnaryEntry{P: p, Result: f(rep.Pick(p))}
	}
	return out, nil
}

// SigBitsPrefixes returns the match prefixes of the 0^p 1 (0|1)^s x^r
// population in ascending value order. They exactly tile the domain.
func SigBitsPrefixes(width, s int) ([]bitstr.Prefix, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	if s < 0 {
		return nil, fmt.Errorf("population: significant bits must be >= 0, got %d", s)
	}
	zero, err := bitstr.Exact(0, width)
	if err != nil {
		return nil, err
	}
	out := []bitstr.Prefix{zero}
	for pos := 0; pos < width; pos++ {
		k := s
		if k > pos {
			k = pos // cannot have more significant bits than remain below the anchor
		}
		lead := uint64(1) << uint(pos)
		sig := width - pos + k // 0^p prefix + leading 1 + k bits
		for c := uint64(0); c < uint64(1)<<uint(k); c++ {
			v := lead | c<<uint(pos-k)
			p, err := bitstr.New(v, sig, width)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// SigBitsTableSize returns the entry count of SigBitsPrefixes without
// materialising it.
func SigBitsTableSize(width, s int) int {
	n := 1
	for pos := 0; pos < width; pos++ {
		k := s
		if k > pos {
			k = pos
		}
		n += 1 << uint(k)
	}
	return n
}

// SigBitsBinary is the two-operand cross product of SigBitsUnary marginals;
// its size is the square of the unary table, the combinatorial blow-up the
// paper warns about.
func SigBitsBinary(f BinaryFunc, width, s int, rep Representative) ([]BinaryEntry, error) {
	xs, err := SigBitsPrefixes(width, s)
	if err != nil {
		return nil, err
	}
	ys, err := SigBitsPrefixes(width, s)
	if err != nil {
		return nil, err
	}
	return crossProduct(f, xs, ys, rep), nil
}
