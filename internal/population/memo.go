package population

import (
	"fmt"
	"sort"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/trie"
)

// This file implements the memoized form of Algorithm 3 used by the
// incremental control round. The contract with the plain builders is strict:
// given the same trie content, budget, and representative, the memoized path
// returns byte-identical output to ADAUnary/ADABinary — it only skips work
// it can prove unchanged, it never approximates. Three observations make
// that possible:
//
//  1. The trie exposes a monotonic ChangeSeq covering every leaf shape/mass
//     mutation, so equal sequence numbers mean identical allocation inputs
//     and the whole previous result can be returned as-is.
//  2. massWithin(leaves, p) depends only on the leaves overlapping p, and
//     every mutation to such a leaf marks a dirty prefix overlapping p; a
//     cached mass whose prefix overlaps no dirty prefix is therefore still
//     exact (same overlapping leaf set, same summation order, same float).
//  3. An entry's result f(rep.Pick(p)) is a pure function of its prefix, so
//     the per-prefix evaluation cache never goes stale; only allocations
//     change, never the value attached to a kept prefix.
//
// A memo instance is tied to one (operation, representative) pair: the
// function itself cannot be fingerprinted, so reusing a memo across
// different operations is a caller bug.

// AllocCache memoizes ADAAllocate across control rounds. The zero value is
// ready to use. It caches both the full allocation (reused wholesale when
// the trie has not mutated at all) and the per-prefix mass evaluations that
// dominate Algorithm 3's cost (reused for every subtree the trie's dirty set
// does not touch).
type AllocCache struct {
	valid  bool
	width  int
	budget int
	seq    uint64 // trie ChangeSeq at fill time
	gen    uint64 // trie Generation at fill time

	prefixes []bitstr.Prefix
	masses   map[bitstr.Prefix]float64
}

// Invalidate drops all cached state; the next call recomputes from scratch.
func (c *AllocCache) Invalidate() { *c = AllocCache{} }

// massesUsable reports whether the cached mass evaluations may seed the next
// computation: the dirty set must cover every mutation since the cache was
// filled. That holds when no commit intervened (the dirty set only grew), or
// when exactly one commit intervened at precisely the cached state (the
// dirty set restarted from it).
func (c *AllocCache) massesUsable(t *trie.Trie) bool {
	if !c.valid || c.width != t.Width() {
		return false
	}
	g := t.Generation()
	return g == c.gen || (g == c.gen+1 && t.CommittedSeq() == c.seq)
}

// ADAAllocateCached is ADAAllocate's incremental mode: identical output,
// with cached work reused where the trie's dirty-subtree tracking proves it
// unchanged. reused reports the wholesale case (nothing mutated since the
// cache was filled; the returned slice is the cached one and must not be
// mutated). A nil cache degrades to the plain ADAAllocate.
func ADAAllocateCached(t *trie.Trie, budget int, c *AllocCache) (prefixes []bitstr.Prefix, reused bool, err error) {
	if budget < 1 {
		return nil, false, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	if c == nil {
		ps, err := ADAAllocate(t, budget)
		return ps, false, err
	}
	if c.valid && c.width == t.Width() && c.budget == budget && c.seq == t.ChangeSeq() {
		return c.prefixes, true, nil
	}
	var old map[bitstr.Prefix]float64
	if c.massesUsable(t) {
		old = c.masses
	}
	dirty := newDirtyIndex(t.Dirty())
	cur := make(map[bitstr.Prefix]float64)
	mass := func(leaves []trie.Bin, p bitstr.Prefix) float64 {
		if m, ok := cur[p]; ok {
			return m
		}
		if old != nil {
			if m, ok := old[p]; ok && !dirty.overlaps(p) {
				cur[p] = m
				return m
			}
		}
		m := massWithin(leaves, p)
		cur[p] = m
		return m
	}
	ps, err := adaAllocate(t, budget, mass)
	if err != nil {
		c.Invalidate()
		return nil, false, err
	}
	c.valid = true
	c.width, c.budget = t.Width(), budget
	c.seq, c.gen = t.ChangeSeq(), t.Generation()
	c.prefixes, c.masses = ps, cur
	return ps, false, nil
}

// dirtyIndex is the dirty prefixes' value ranges merged into a sorted,
// disjoint interval union, so the hot mass-reuse path tests overlap in
// O(log n) instead of scanning the whole dirty set per cached prefix.
type dirtyIndex struct {
	lo, hi []uint64 // parallel; sorted ascending, disjoint
}

func newDirtyIndex(dirty []bitstr.Prefix) dirtyIndex {
	if len(dirty) == 0 {
		return dirtyIndex{}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Lo() < dirty[j].Lo() })
	var d dirtyIndex
	curLo, curHi := dirty[0].Lo(), dirty[0].Hi()
	for _, p := range dirty[1:] {
		if p.Lo() <= curHi+1 && curHi+1 != 0 { // adjacent or overlapping
			if p.Hi() > curHi {
				curHi = p.Hi()
			}
			continue
		}
		d.lo = append(d.lo, curLo)
		d.hi = append(d.hi, curHi)
		curLo, curHi = p.Lo(), p.Hi()
	}
	d.lo = append(d.lo, curLo)
	d.hi = append(d.hi, curHi)
	return d
}

// overlaps reports whether p's value range intersects the dirty union:
// prefix overlap is exactly interval overlap, because prefixes are aligned
// value ranges.
func (d dirtyIndex) overlaps(p bitstr.Prefix) bool {
	// First merged interval whose high end reaches p; d.hi is ascending
	// because the intervals are sorted and disjoint.
	lo := p.Lo()
	i := sort.Search(len(d.hi), func(i int) bool { return d.hi[i] >= lo })
	return i < len(d.lo) && d.lo[i] <= p.Hi()
}

// UnaryMemo carries the memoized state for one unary (operation,
// representative) pair across control rounds. The zero value is ready.
type UnaryMemo struct {
	alloc AllocCache
	// evals accumulates f(rep.Pick(p)) per prefix; pure, so never stale.
	evals map[bitstr.Prefix]uint64

	valid   bool
	width   int
	budget  int
	rep     Representative
	seq     uint64
	entries []UnaryEntry
	results map[bitstr.Prefix]uint64
}

// UnaryMemoResult is one memoized population build.
type UnaryMemoResult struct {
	// Entries is the population, identical to what ADAUnary would return.
	// On the wholesale-reuse path it aliases the memo's cache; callers must
	// not mutate it.
	Entries []UnaryEntry
	// Results maps each installed prefix to its result — the shadow copy a
	// delta-committing target diffs against. The map is rebuilt on every
	// recompute, so callers may retain it across calls.
	Results map[bitstr.Prefix]uint64
	// Seq is the trie ChangeSeq this population corresponds to.
	Seq uint64
	// Computed and Reused split the entry count into fresh function
	// evaluations and cache hits (the paper's Table II compute accounting).
	Computed int
	Reused   int
	// AllocReused reports that the whole allocation was reused because the
	// trie had not mutated since the previous build.
	AllocReused bool
}

// Invalidate drops all cached state.
func (m *UnaryMemo) Invalidate() { *m = UnaryMemo{} }

// ADAUnaryMemo is ADAUnary with cross-round memoization. Output is
// byte-identical to ADAUnary for the same inputs; m must be dedicated to
// this (f, rep) pair.
func ADAUnaryMemo(t *trie.Trie, f UnaryFunc, budget int, rep Representative, m *UnaryMemo) (UnaryMemoResult, error) {
	if m == nil {
		entries, err := ADAUnary(t, f, budget, rep)
		if err != nil {
			return UnaryMemoResult{}, err
		}
		results := make(map[bitstr.Prefix]uint64, len(entries))
		for _, e := range entries {
			results[e.P] = e.Result
		}
		return UnaryMemoResult{Entries: entries, Results: results, Seq: t.ChangeSeq(), Computed: len(entries)}, nil
	}
	if m.valid && m.width == t.Width() && m.budget == budget && m.rep == rep && m.seq == t.ChangeSeq() {
		return UnaryMemoResult{
			Entries: m.entries, Results: m.results, Seq: m.seq,
			Reused: len(m.entries), AllocReused: true,
		}, nil
	}
	if m.rep != rep || m.width != t.Width() {
		// A different representative (or domain) invalidates every cached
		// evaluation, not just the allocation.
		m.Invalidate()
	}
	prefixes, allocReused, err := ADAAllocateCached(t, budget, &m.alloc)
	if err != nil {
		m.Invalidate()
		return UnaryMemoResult{}, err
	}
	if m.evals == nil {
		m.evals = make(map[bitstr.Prefix]uint64, len(prefixes))
	}
	res := UnaryMemoResult{
		Entries:     make([]UnaryEntry, len(prefixes)),
		Results:     make(map[bitstr.Prefix]uint64, len(prefixes)),
		Seq:         t.ChangeSeq(),
		AllocReused: allocReused,
	}
	for i, p := range prefixes {
		r, ok := m.evals[p]
		if ok {
			res.Reused++
		} else {
			r = f(rep.Pick(p))
			m.evals[p] = r
			res.Computed++
		}
		res.Entries[i] = UnaryEntry{P: p, Result: r}
		res.Results[p] = r
	}
	m.valid = true
	m.width, m.budget, m.rep = t.Width(), budget, rep
	m.seq = res.Seq
	m.entries, m.results = res.Entries, res.Results
	return res, nil
}

// BinaryPair is the match key of one two-operand entry.
type BinaryPair struct {
	X, Y bitstr.Prefix
}

// BinaryMemo carries the memoized state for one binary (operation,
// representative) pair across control rounds. The zero value is ready.
type BinaryMemo struct {
	ax, ay AllocCache
	evals  map[BinaryPair]uint64

	valid      bool
	budget     int
	rep        Representative
	wx, wy     int
	seqX, seqY uint64
	entries    []BinaryEntry
	results    map[BinaryPair]uint64
}

// BinaryMemoResult is one memoized two-operand population build.
type BinaryMemoResult struct {
	// Entries is the population, identical to ADABinary's output; on the
	// wholesale-reuse path it aliases the memo's cache.
	Entries []BinaryEntry
	// Results maps each installed pair to its result, rebuilt on every
	// recompute; callers may retain it.
	Results map[BinaryPair]uint64
	// SeqX, SeqY are the operand tries' ChangeSeqs this build corresponds to.
	SeqX, SeqY uint64
	Computed   int
	Reused     int
	// AllocReused reports that both marginal allocations were reused.
	AllocReused bool
}

// Invalidate drops all cached state.
func (m *BinaryMemo) Invalidate() { *m = BinaryMemo{} }

// ADABinaryMemo is ADABinary with cross-round memoization. Output is
// byte-identical to ADABinary for the same inputs; m must be dedicated to
// this (f, rep) pair. The spread-proportional budget factoring is recomputed
// every call (it is cheap and depends on the full hit distribution); the
// per-marginal Algorithm 3 runs and the pair evaluations are memoized.
func ADABinaryMemo(tx, ty *trie.Trie, f BinaryFunc, budget int, rep Representative, m *BinaryMemo) (BinaryMemoResult, error) {
	if budget < 1 {
		return BinaryMemoResult{}, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	if m == nil {
		entries, err := ADABinary(tx, ty, f, budget, rep)
		if err != nil {
			return BinaryMemoResult{}, err
		}
		results := make(map[BinaryPair]uint64, len(entries))
		for _, e := range entries {
			results[BinaryPair{X: e.X, Y: e.Y}] = e.Result
		}
		return BinaryMemoResult{
			Entries: entries, Results: results,
			SeqX: tx.ChangeSeq(), SeqY: ty.ChangeSeq(), Computed: len(entries),
		}, nil
	}
	if m.valid && m.budget == budget && m.rep == rep &&
		m.wx == tx.Width() && m.wy == ty.Width() &&
		m.seqX == tx.ChangeSeq() && m.seqY == ty.ChangeSeq() {
		return BinaryMemoResult{
			Entries: m.entries, Results: m.results,
			SeqX: m.seqX, SeqY: m.seqY,
			Reused: len(m.entries), AllocReused: true,
		}, nil
	}
	if m.rep != rep || m.wx != tx.Width() || m.wy != ty.Width() {
		m.Invalidate()
	}
	mx, my := BinarySideBudgets(tx, ty, budget)
	xs, rx, err := ADAAllocateCached(tx, mx, &m.ax)
	if err != nil {
		m.Invalidate()
		return BinaryMemoResult{}, err
	}
	ys, ry, err := ADAAllocateCached(ty, my, &m.ay)
	if err != nil {
		m.Invalidate()
		return BinaryMemoResult{}, err
	}
	if m.evals == nil {
		m.evals = make(map[BinaryPair]uint64, len(xs)*len(ys))
	}
	res := BinaryMemoResult{
		Entries:     make([]BinaryEntry, 0, len(xs)*len(ys)),
		Results:     make(map[BinaryPair]uint64, len(xs)*len(ys)),
		SeqX:        tx.ChangeSeq(),
		SeqY:        ty.ChangeSeq(),
		AllocReused: rx && ry,
	}
	for _, x := range xs {
		var repX uint64
		haveRepX := false
		for _, y := range ys {
			k := BinaryPair{X: x, Y: y}
			r, ok := m.evals[k]
			if ok {
				res.Reused++
			} else {
				if !haveRepX {
					repX = rep.Pick(x)
					haveRepX = true
				}
				r = f(repX, rep.Pick(y))
				m.evals[k] = r
				res.Computed++
			}
			res.Entries = append(res.Entries, BinaryEntry{X: x, Y: y, Result: r})
			res.Results[k] = r
		}
	}
	m.valid = true
	m.budget, m.rep = budget, rep
	m.wx, m.wy = tx.Width(), ty.Width()
	m.seqX, m.seqY = res.SeqX, res.SeqY
	m.entries, m.results = res.Entries, res.Results
	return res, nil
}
