package population

import (
	"math"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func TestSigBitsPrefixesTileDomain(t *testing.T) {
	for _, s := range []int{0, 1, 2, 4} {
		for _, width := range []int{4, 8, 16} {
			ps, err := SigBitsPrefixes(width, s)
			if err != nil {
				t.Fatalf("width %d s %d: %v", width, s, err)
			}
			if !bitstr.Partition(ps) {
				t.Errorf("width %d s %d: prefixes do not tile the domain", width, s)
			}
			if got := SigBitsTableSize(width, s); got != len(ps) {
				t.Errorf("width %d s %d: TableSize = %d, actual %d", width, s, got, len(ps))
			}
		}
	}
}

func TestSigBitsPaperForm(t *testing.T) {
	// 4-bit, s = 1: every nonzero magnitude contributes min(2^1, 2^pos)
	// entries anchored at the leading one.
	ps, err := SigBitsPrefixes(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"0000",         // exact zero
		"0001",         // pos 0
		"0010", "0011", // pos 1
		"010x", "011x", // pos 2
		"10xx", "11xx", // pos 3
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d prefixes %v, want %d", len(ps), ps, len(want))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("prefix %d = %q, want %q", i, p, want[i])
		}
	}
}

func TestSigBitsTableSizeExponentialInS(t *testing.T) {
	// Paper Fig 7b: table size grows exponentially with the significant
	// bits.
	prev := 0
	for s := 1; s <= 8; s++ {
		size := SigBitsTableSize(32, s)
		if s > 1 {
			ratio := float64(size) / float64(prev)
			if ratio < 1.7 {
				t.Errorf("s=%d size %d over s=%d size %d: growth ratio %.2f, want ≈2",
					s, size, s-1, prev, ratio)
			}
		}
		prev = size
	}
}

func TestSigBitsUnaryResults(t *testing.T) {
	entries, err := SigBitsUnary(double, 8, 2, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Result != double(e.P.Midpoint()) {
			t.Errorf("entry %v: result %d, want %d", e.P, e.Result, double(e.P.Midpoint()))
		}
	}
}

func TestSigBitsErrorFallsWithS(t *testing.T) {
	// Paper Fig 7a: increasing significant bits reduces average error.
	samples := make([]uint64, 0, 4096)
	for v := uint64(1); v < 1<<12; v++ {
		samples = append(samples, v)
	}
	var prevErr float64 = math.Inf(1)
	for _, s := range []int{1, 3, 5, 7} {
		entries, err := SigBitsUnary(square, 12, s, Midpoint)
		if err != nil {
			t.Fatal(err)
		}
		avg := avgRelError(entries, square, samples)
		if avg >= prevErr {
			t.Errorf("s=%d avg error %.4f did not fall below %.4f", s, avg, prevErr)
		}
		prevErr = avg
	}
}

func TestSigBitsBinarySize(t *testing.T) {
	entries, err := SigBitsBinary(mul, 4, 1, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	unary := SigBitsTableSize(4, 1)
	if len(entries) != unary*unary {
		t.Errorf("binary size = %d, want %d²=%d", len(entries), unary, unary*unary)
	}
}

func TestSigBitsErrors(t *testing.T) {
	if _, err := SigBitsPrefixes(0, 1); err == nil {
		t.Error("width 0: want error")
	}
	if _, err := SigBitsPrefixes(8, -1); err == nil {
		t.Error("negative s: want error")
	}
	if _, err := SigBitsUnary(square, 65, 1, Midpoint); err == nil {
		t.Error("width 65: want error")
	}
	if _, err := SigBitsBinary(mul, 0, 1, Midpoint); err == nil {
		t.Error("binary width 0: want error")
	}
}
