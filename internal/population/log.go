package population

import (
	"fmt"
	"math"
	"sort"

	"github.com/ada-repro/ada/internal/bitstr"
)

// DefaultLogScale is the fixed-point scale for logarithm tables: log2 values
// are stored as round(log2(x) * DefaultLogScale).
const DefaultLogScale = 1 << 16

// LogTables is the logarithmic population of Sharma et al. [12]: a log2
// lookup over the operand domain and an antilog (2^x) lookup over the
// log-sum domain. Multiplication becomes antilog(log(x) + log(y)) and
// division antilog(log(x) − log(y)), both expressible with the switch's
// native add/subtract ALU between two TCAM lookups.
type LogTables struct {
	// Width is the operand width in bits.
	Width int
	// Scale is the fixed-point multiplier applied to log2 values.
	Scale uint64
	// Log maps operand prefixes to round(log2(rep) * Scale).
	Log []UnaryEntry
	// Antilog maps scaled-log prefixes back to round(2^(rep/Scale)).
	Antilog []UnaryEntry
	// AntilogWidth is the key width of the antilog table in bits; it must
	// hold the largest possible log sum, 2 * Width * Scale.
	AntilogWidth int
}

// BuildLogTables constructs log/antilog tables with the given per-table
// entry budgets. scale == 0 selects DefaultLogScale.
func BuildLogTables(width, logBudget, antilogBudget int, scale uint64, rep Representative) (*LogTables, error) {
	if width < 1 || width > 32 {
		// Antilog sums for wider operands exceed the uint64 key space.
		return nil, fmt.Errorf("%w: log tables support widths 1-32, got %d", ErrWidth, width)
	}
	if scale == 0 {
		scale = DefaultLogScale
	}
	logf := func(x uint64) uint64 {
		if x < 1 {
			x = 1
		}
		return uint64(math.Round(math.Log2(float64(x)) * float64(scale)))
	}
	logEntries, err := NaiveUnary(logf, width, logBudget, rep)
	if err != nil {
		return nil, fmt.Errorf("log table: %w", err)
	}
	maxSum := 2 * uint64(width) * scale
	alWidth := 1
	for uint64(1)<<uint(alWidth) <= maxSum {
		alWidth++
	}
	expf := func(l uint64) uint64 {
		v := math.Exp2(float64(l) / float64(scale))
		if v >= math.MaxUint64 {
			return math.MaxUint64
		}
		return uint64(math.Round(v))
	}
	antilogEntries, err := NaiveUnary(expf, alWidth, antilogBudget, rep)
	if err != nil {
		return nil, fmt.Errorf("antilog table: %w", err)
	}
	return &LogTables{
		Width:        width,
		Scale:        scale,
		Log:          logEntries,
		Antilog:      antilogEntries,
		AntilogWidth: alWidth,
	}, nil
}

// TotalEntries returns the combined TCAM footprint of both tables.
func (lt *LogTables) TotalEntries() int { return len(lt.Log) + len(lt.Antilog) }

// lookupSorted finds the deepest (longest-prefix) unary entry containing v.
// Entries must be in bitstr.SortPrefixes order; both flat partitions
// (NaiveUnary, SigBitsUnary) and nested LPM covers (ADAUnary) are supported.
// It is the software analogue of the hardware resolution in the tcam
// package.
//
// Prefix sets form a laminar family, so among all entries containing v the
// deepest one has the largest Lo (ties broken by more significant bits,
// which sort earlier).
func lookupSorted(entries []UnaryEntry, v uint64) (UnaryEntry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].P.Lo() > v }) - 1
	for ; i >= 0; i-- {
		if !entries[i].P.Contains(v) {
			continue
		}
		best := entries[i]
		lo := entries[i].P.Lo()
		for j := i - 1; j >= 0 && entries[j].P.Lo() == lo; j-- {
			if entries[j].P.Contains(v) && entries[j].P.Bits() > best.P.Bits() {
				best = entries[j]
			}
		}
		return best, true
	}
	return UnaryEntry{}, false
}

// Multiply evaluates x*y through the log pipeline, mirroring the data-plane
// sequence: two log lookups, one native addition, one antilog lookup. Zero
// operands short-circuit to zero, as the P4 implementation guards them with
// a match on the zero key.
func (lt *LogTables) Multiply(x, y uint64) (uint64, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	lx, ok := lookupSorted(lt.Log, x)
	if !ok {
		return 0, false
	}
	ly, ok := lookupSorted(lt.Log, y)
	if !ok {
		return 0, false
	}
	sum := lx.Result + ly.Result
	al, ok := lookupSorted(lt.Antilog, sum)
	if !ok {
		return 0, false
	}
	return al.Result, true
}

// Divide evaluates x/y through the log pipeline (antilog(log x − log y)).
// x < y truncates toward zero as integer division does; y == 0 reports
// failure.
func (lt *LogTables) Divide(x, y uint64) (uint64, bool) {
	if y == 0 {
		return 0, false
	}
	if x == 0 {
		return 0, true
	}
	lx, ok := lookupSorted(lt.Log, x)
	if !ok {
		return 0, false
	}
	ly, ok := lookupSorted(lt.Log, y)
	if !ok {
		return 0, false
	}
	if ly.Result >= lx.Result {
		// log x <= log y: quotient rounds to <= 1.
		if ly.Result-lx.Result > lt.Scale/2 {
			return 0, true
		}
		return 1, true
	}
	al, ok := lookupSorted(lt.Antilog, lx.Result-ly.Result)
	if !ok {
		return 0, false
	}
	return al.Result, true
}

var _ = bitstr.Prefix{} // bitstr types appear in exported fields above
