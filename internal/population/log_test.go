package population

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuildLogTables(t *testing.T) {
	lt, err := BuildLogTables(16, 64, 128, 0, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Scale != DefaultLogScale {
		t.Errorf("Scale = %d, want default", lt.Scale)
	}
	if lt.TotalEntries() != len(lt.Log)+len(lt.Antilog) {
		t.Error("TotalEntries inconsistent")
	}
	if len(lt.Log) != 64 {
		t.Errorf("log entries = %d, want 64", len(lt.Log))
	}
	// Antilog key width must hold 2*width*scale.
	need := 2 * uint64(16) * lt.Scale
	if uint64(1)<<uint(lt.AntilogWidth) <= need {
		t.Errorf("antilog width %d cannot hold %d", lt.AntilogWidth, need)
	}
}

func TestBuildLogTablesErrors(t *testing.T) {
	if _, err := BuildLogTables(0, 8, 8, 0, Midpoint); err == nil {
		t.Error("width 0: want error")
	}
	if _, err := BuildLogTables(33, 8, 8, 0, Midpoint); err == nil {
		t.Error("width 33: want error")
	}
	if _, err := BuildLogTables(16, 0, 8, 0, Midpoint); err == nil {
		t.Error("log budget 0: want error")
	}
	if _, err := BuildLogTables(16, 8, 0, 0, Midpoint); err == nil {
		t.Error("antilog budget 0: want error")
	}
}

func TestLogMultiplyAccuracy(t *testing.T) {
	lt, err := BuildLogTables(16, 512, 1024, 0, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	total, n := 0.0, 0
	for i := 0; i < 5000; i++ {
		x := uint64(1 + rng.Intn(1<<16-1))
		y := uint64(1 + rng.Intn(1<<16-1))
		got, ok := lt.Multiply(x, y)
		if !ok {
			t.Fatalf("Multiply(%d, %d) missed", x, y)
		}
		exact := float64(x * y)
		total += math.Abs(float64(got)-exact) / exact
		n++
	}
	avg := total / float64(n)
	if avg > 0.10 {
		t.Errorf("avg multiply error %.3f exceeds 10%%", avg)
	}
}

func TestLogMultiplyZero(t *testing.T) {
	lt, err := BuildLogTables(8, 32, 64, 0, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := lt.Multiply(0, 200); !ok || got != 0 {
		t.Errorf("Multiply(0, 200) = %d, %v", got, ok)
	}
	if got, ok := lt.Multiply(7, 0); !ok || got != 0 {
		t.Errorf("Multiply(7, 0) = %d, %v", got, ok)
	}
}

func TestLogDivide(t *testing.T) {
	lt, err := BuildLogTables(16, 2048, 2048, 0, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	total, n := 0.0, 0
	for i := 0; i < 5000; i++ {
		// Operands sit where the equal-width log table is reasonably fine;
		// small divisors are exactly the regime the naive log population
		// handles badly (§II-A), exercised in the sig-bits tests instead.
		y := uint64(1024 + rng.Intn(8192))
		x := y + uint64(rng.Intn(1<<16-int(y)))
		got, ok := lt.Divide(x, y)
		if !ok {
			t.Fatalf("Divide(%d, %d) missed", x, y)
		}
		exact := float64(x) / float64(y)
		total += math.Abs(float64(got)-exact) / exact
		n++
	}
	if avg := total / float64(n); avg > 0.10 {
		t.Errorf("avg divide error %.3f exceeds 10%%", avg)
	}
}

func TestLogDivideEdgeCases(t *testing.T) {
	lt, err := BuildLogTables(8, 64, 128, 0, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lt.Divide(10, 0); ok {
		t.Error("divide by zero must fail")
	}
	if got, ok := lt.Divide(0, 5); !ok || got != 0 {
		t.Errorf("Divide(0,5) = %d, %v", got, ok)
	}
	// x < y: quotient near zero or one.
	got, ok := lt.Divide(2, 200)
	if !ok || got > 1 {
		t.Errorf("Divide(2,200) = %d, %v; want 0 or 1", got, ok)
	}
	// x ≈ y: quotient 1.
	got, ok = lt.Divide(100, 100)
	if !ok || got > 2 {
		t.Errorf("Divide(100,100) = %d, %v; want ≈1", got, ok)
	}
}

func TestLookupSorted(t *testing.T) {
	entries, err := NaiveUnary(ident, 8, 16, Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 256; v++ {
		e, ok := lookupSorted(entries, v)
		if !ok {
			t.Fatalf("miss at %d", v)
		}
		if !e.P.Contains(v) {
			t.Fatalf("entry %v does not contain %d", e.P, v)
		}
	}
	if _, ok := lookupSorted(nil, 5); ok {
		t.Error("empty table lookup must miss")
	}
}
