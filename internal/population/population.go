// Package population builds calculation-TCAM contents for arithmetic
// operations that PISA switches cannot execute natively.
//
// Three schemes are provided:
//
//   - Naive: the distribution-agnostic, equal-sized-range population used by
//     Sharma et al. [12] and Nimble [10]; the paper's baseline.
//   - Logarithmic: log/antilog tables that turn multiplication and division
//     into additions/subtractions between two lookups [12].
//   - ADA (Algorithm 3): distribution-aware population that walks the binning
//     trie top-down and assigns entries to each subtree in proportion to its
//     aggregated hit count, so hot intervals receive finer entries.
//
// All schemes emit entries whose match prefixes exactly tile their target
// domain, so a calculation lookup never misses inside the covered range.
package population

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/trie"
)

var (
	// ErrBudget reports an entry budget below one.
	ErrBudget = errors.New("population: entry budget must be at least 1")
	// ErrWidth reports an operand width outside [1, 64].
	ErrWidth = errors.New("population: width must be in [1, 64]")
	// ErrRange reports an invalid working range.
	ErrRange = errors.New("population: invalid working range")
)

// Representative selects which value inside an entry's interval stands in
// for the whole interval when precomputing the result.
type Representative int

const (
	// Midpoint uses the interval midpoint (the paper's median-of-range
	// choice, as in Nimble).
	Midpoint Representative = iota + 1
	// GeoMean uses the integer geometric mean; an ablation that minimises
	// multiplicative relative error.
	GeoMean
)

// Pick returns the representative value of prefix p under r.
func (r Representative) Pick(p bitstr.Prefix) uint64 {
	if r == GeoMean {
		return p.GeoMean()
	}
	return p.Midpoint()
}

// String implements fmt.Stringer.
func (r Representative) String() string {
	switch r {
	case Midpoint:
		return "midpoint"
	case GeoMean:
		return "geomean"
	default:
		return fmt.Sprintf("Representative(%d)", int(r))
	}
}

// UnaryFunc is the exact single-operand operation being emulated.
type UnaryFunc func(x uint64) uint64

// BinaryFunc is the exact two-operand operation being emulated.
type BinaryFunc func(x, y uint64) uint64

// UnaryEntry maps one operand interval to a precomputed result.
type UnaryEntry struct {
	P      bitstr.Prefix
	Result uint64
}

// BinaryEntry maps one pair of operand intervals to a precomputed result.
type BinaryEntry struct {
	X, Y   bitstr.Prefix
	Result uint64
}

// Subdivide tiles prefix p with up to m sub-prefixes: it starts from p and
// greedily splits the widest emitted prefix until the budget or full
// specification is reached. The result always exactly tiles p and has
// min-width spread of at most one bit.
func Subdivide(p bitstr.Prefix, m int) []bitstr.Prefix {
	if m < 1 {
		m = 1
	}
	out := []bitstr.Prefix{p}
	for len(out) < m {
		// Split the entry with the most wildcard bits; first wins ties so the
		// result is deterministic and value-ordered refinement is stable.
		best, bestWild := -1, 0
		for i, q := range out {
			if q.WildBits() > bestWild {
				best, bestWild = i, q.WildBits()
			}
		}
		if best < 0 {
			break // all fully specified
		}
		l, err := out[best].Left()
		if err != nil {
			break
		}
		r, err := out[best].Right()
		if err != nil {
			break
		}
		out[best] = l
		out = append(out, r)
	}
	bitstr.SortPrefixes(out)
	return out
}

// NaiveUnary populates a unary operation over the full width-bit domain with
// equal-sized intervals (distribution-agnostic baseline).
func NaiveUnary(f UnaryFunc, width, budget int, rep Representative) ([]UnaryEntry, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	root, err := bitstr.Root(width)
	if err != nil {
		return nil, err
	}
	return fillUnary(f, []bitstr.Prefix{root}, budget, rep)
}

// NaiveUnaryRange populates only the working range [lo, hi]; the rest of the
// domain is uncovered. This models the range-bounding optimisation of §II-B
// without distribution awareness.
func NaiveUnaryRange(f UnaryFunc, width, budget int, lo, hi uint64, rep Representative) ([]UnaryEntry, error) {
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	cover, err := bitstr.CoverRange(lo, hi, width)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRange, err)
	}
	return fillUnary(f, cover, budget, rep)
}

// fillUnary distributes budget over base prefixes proportionally to their
// size and subdivides each.
func fillUnary(f UnaryFunc, base []bitstr.Prefix, budget int, rep Representative) ([]UnaryEntry, error) {
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	if len(base) > budget {
		return nil, fmt.Errorf("%w: %d base intervals exceed budget %d", ErrBudget, len(base), budget)
	}
	// Largest-remainder apportionment by interval size, minimum one each.
	sizes := make([]float64, len(base))
	total := 0.0
	for i, p := range base {
		sizes[i] = float64(p.Size())
		total += sizes[i]
	}
	alloc := apportion(sizes, total, budget)
	var out []UnaryEntry
	for i, p := range base {
		for _, q := range Subdivide(p, alloc[i]) {
			out = append(out, UnaryEntry{P: q, Result: f(rep.Pick(q))})
		}
	}
	return out, nil
}

// apportion splits budget across weights (each ≥ 1 share) using the
// largest-remainder method. weights must be non-negative; a zero (or
// negative) total falls back to equal shares. The weights slice is never
// mutated — callers hand in live slices they keep using.
func apportion(weights []float64, total float64, budget int) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	weightOf := func(i int) float64 { return weights[i] }
	if total <= 0 {
		total = float64(n)
		weightOf = func(int) float64 { return 1 }
	}
	// Reserve one entry per bucket so coverage never has holes.
	remaining := budget - n
	if remaining < 0 {
		remaining = 0
	}
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, n)
	used := 0
	for i := range weights {
		share := float64(remaining) * weightOf(i) / total
		fl := int(math.Floor(share))
		out[i] = 1 + fl
		used += fl
		fracs[i] = frac{i: i, f: share - float64(fl)}
	}
	// Hand out the leftovers to the largest remainders: one sort instead of
	// a max-scan per leftover. Ties break on the lower index, matching the
	// repeated-max-scan order, so allocations stay byte-identical.
	left := remaining - used
	if left > 0 {
		sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
		for j := 0; j < left && j < n; j++ {
			out[fracs[j].i]++
		}
	}
	return out
}

// NaiveBinary populates a two-operand operation over the full domain with
// equal significant bits per operand, the combinatorial baseline of §II-A.
// The budget is split evenly between the two key dimensions.
func NaiveBinary(f BinaryFunc, width, budget int, rep Representative) ([]BinaryEntry, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	root, err := bitstr.Root(width)
	if err != nil {
		return nil, err
	}
	side := int(math.Floor(math.Sqrt(float64(budget))))
	if side < 1 {
		side = 1
	}
	xs := Subdivide(root, side)
	ys := Subdivide(root, side)
	return crossProduct(f, xs, ys, rep), nil
}

// CrossEntries builds the two-operand entries for every (x, y) prefix pair
// with results precomputed at the representatives. Used by deployments that
// mix marginal strategies (e.g. an adaptive rate marginal with a sig-bits
// ΔT marginal, the paper's ADA(R) Nimble configuration).
func CrossEntries(f BinaryFunc, xs, ys []bitstr.Prefix, rep Representative) []BinaryEntry {
	return crossProduct(f, xs, ys, rep)
}

func crossProduct(f BinaryFunc, xs, ys []bitstr.Prefix, rep Representative) []BinaryEntry {
	out := make([]BinaryEntry, 0, len(xs)*len(ys))
	for _, x := range xs {
		rx := rep.Pick(x)
		for _, y := range ys {
			out = append(out, BinaryEntry{X: x, Y: y, Result: f(rx, rep.Pick(y))})
		}
	}
	return out
}

// ADAUnary runs Algorithm 3: it aggregates the trie's hit counts bottom-up,
// then walks top-down assigning the entry budget to each subtree in
// proportion to its aggregated hits (w = 0.5 per side when a subtree has no
// data), and finally tiles each allocation inside its interval. Hot bins end
// up with exponentially finer entries than cold bins.
func ADAUnary(t *trie.Trie, f UnaryFunc, budget int, rep Representative) ([]UnaryEntry, error) {
	prefixes, err := ADAAllocate(t, budget)
	if err != nil {
		return nil, err
	}
	out := make([]UnaryEntry, len(prefixes))
	for i, p := range prefixes {
		out[i] = UnaryEntry{P: p, Result: f(rep.Pick(p))}
	}
	return out, nil
}

// adaTailEpsilon is the per-side probability mass trimmed when estimating
// the working range (§II-B: parameters are range bound; values outside the
// estimated range fall through to the catch-all entry).
const adaTailEpsilon = 0.005

// ADAAllocate performs Algorithm 3's hit-proportional budget distribution
// and returns the match prefixes only (no results), in value order. The
// output is an LPM cover, not a flat partition:
//
//  1. The trie's hit mass determines the working range (the smallest
//     interval holding all but a sliver of the observed distribution).
//  2. The working range is covered exactly and then refined greedily: the
//     sub-region holding the most mass is split first, so hot intervals end
//     up with exponentially finer entries (the paper's proportional
//     allocation without its integer-rounding pathology on deep skew).
//  3. One all-wildcard catch-all entry backstops out-of-range operands;
//     longest-prefix match ensures the fine entries win inside the range.
//
// Cold regions therefore collapse into the catch-all — the abstract's
// "aggregating entries that are unused or less popular". With no hit data at
// all the result degenerates to the uniform equal-share population
// (Algorithm 3's w = 0.5 initialisation).
func ADAAllocate(t *trie.Trie, budget int) ([]bitstr.Prefix, error) {
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	return adaAllocate(t, budget, massWithin)
}

// adaAllocate is the Algorithm 3 core with a pluggable mass oracle. The
// incremental mode (AllocCache) substitutes a memoizing oracle; the oracle
// must return exactly what massWithin would, bit for bit, so both modes
// produce identical allocations.
func adaAllocate(t *trie.Trie, budget int, mass func([]trie.Bin, bitstr.Prefix) float64) ([]bitstr.Prefix, error) {
	width := t.Width()
	root, err := bitstr.Root(width)
	if err != nil {
		return nil, err
	}
	total := t.AggregateHits()
	leaves := t.Leaves()
	if total == 0 || budget == 1 {
		// No distribution knowledge: equal share across the domain.
		return Subdivide(root, budget), nil
	}

	// 1. Working range: trim adaTailEpsilon of mass from each side.
	eps := float64(total) * adaTailEpsilon
	loIdx, hiIdx := 0, len(leaves)-1
	cum := 0.0
	for i, l := range leaves {
		cum += float64(l.Hits)
		if cum > eps {
			loIdx = i
			break
		}
	}
	cum = 0.0
	for i := len(leaves) - 1; i >= 0; i-- {
		cum += float64(leaves[i].Hits)
		if cum > eps {
			hiIdx = i
			break
		}
	}
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	lo, hi := leaves[loIdx].Prefix.Lo(), leaves[hiIdx].Prefix.Hi()

	cover, err := bitstr.CoverRange(lo, hi, width)
	if err != nil {
		return nil, err
	}

	// Cold-region backstop: prefer tiling the out-of-range complement with
	// the trie's own cold leaves (their midpoints are decent stand-ins for
	// stray operands); fall back to a single all-wildcard catch-all when the
	// budget cannot afford that, and to the uniform population when it
	// cannot even afford the range cover.
	var backstop []bitstr.Prefix
	for _, l := range leaves[:loIdx] {
		backstop = append(backstop, l.Prefix)
	}
	for _, l := range leaves[hiIdx+1:] {
		backstop = append(backstop, l.Prefix)
	}
	if len(backstop)+len(cover) > budget {
		backstop = []bitstr.Prefix{root}
		if len(cover)+1 > budget {
			return Subdivide(root, budget), nil
		}
	}
	refineBudget := budget - len(backstop)

	// 2. Greedy mass-proportional refinement within the range. Splittable
	// regions live in a max-heap ordered by (mass, wild bits, low bound) —
	// a strict total order, so the heap pops regions in exactly the
	// sequence the original linear max-scan selected them, at
	// O(budget·log budget) instead of O(budget²). Fully specified regions
	// can never be split again and are parked in done.
	var done []bitstr.Prefix
	h := regionHeap{rs: make([]region, 0, len(cover))}
	push := func(p bitstr.Prefix) {
		if p.WildBits() == 0 {
			done = append(done, p)
			return
		}
		heap.Push(&h, region{p: p, mass: mass(leaves, p)})
	}
	for _, p := range cover {
		push(p)
	}
	for len(done)+h.Len() < refineBudget && h.Len() > 0 {
		best := heap.Pop(&h).(region)
		lp, err := best.p.Left()
		if err != nil {
			return nil, err
		}
		rp, err := best.p.Right()
		if err != nil {
			return nil, err
		}
		push(lp)
		push(rp)
	}

	// 3. Combine the backstop and the refined range.
	out := make([]bitstr.Prefix, 0, len(backstop)+len(done)+h.Len())
	seen := make(map[bitstr.Prefix]bool, cap(out))
	add := func(p bitstr.Prefix) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range backstop {
		add(p)
	}
	for _, p := range done {
		add(p)
	}
	for _, r := range h.rs {
		add(r.p)
	}
	bitstr.SortPrefixes(out)
	return out, nil
}

// region is one candidate prefix in Algorithm 3's refinement loop.
type region struct {
	p    bitstr.Prefix
	mass float64
}

// regionHeap is a max-heap over (mass, wild bits, low bound) — the exact
// selection order of Algorithm 3's refinement: hottest first, coarser first
// on mass ties, lower range first as the final tiebreak. The order is total
// (low bounds are unique within a partition), so heap extraction is
// deterministic and matches a linear max-scan step for step.
type regionHeap struct{ rs []region }

func (h *regionHeap) Len() int { return len(h.rs) }

func (h *regionHeap) Less(i, j int) bool {
	a, b := h.rs[i], h.rs[j]
	switch {
	case a.mass != b.mass:
		return a.mass > b.mass
	case a.p.WildBits() != b.p.WildBits():
		return a.p.WildBits() > b.p.WildBits()
	default:
		return a.p.Lo() < b.p.Lo()
	}
}

func (h *regionHeap) Swap(i, j int) { h.rs[i], h.rs[j] = h.rs[j], h.rs[i] }

func (h *regionHeap) Push(x any) { h.rs = append(h.rs, x.(region)) }

func (h *regionHeap) Pop() any {
	last := len(h.rs) - 1
	r := h.rs[last]
	h.rs = h.rs[:last]
	return r
}

// massWithin returns the hit mass inside prefix p, spreading each leaf's
// hits uniformly over its interval.
func massWithin(leaves []trie.Bin, p bitstr.Prefix) float64 {
	mass := 0.0
	for _, l := range leaves {
		if l.Hits == 0 || !l.Prefix.Overlaps(p) {
			continue
		}
		switch {
		case p.ContainsPrefix(l.Prefix):
			mass += float64(l.Hits)
		case l.Prefix.ContainsPrefix(p):
			// Fraction of the leaf covered by p: 2^-(bits difference).
			frac := math.Exp2(float64(l.Prefix.Bits() - p.Bits()))
			mass += float64(l.Hits) * frac
		}
	}
	return mass
}

// EffectiveSupport returns the exponential of the Shannon entropy of the
// trie's leaf-hit distribution — the "effective number of bins" the operand
// occupies. A point-mass operand scores ≈1, a uniform operand scores the
// leaf count. ADABinary uses it to split the joint budget asymmetrically.
func EffectiveSupport(t *trie.Trie) float64 {
	total := float64(t.TotalHits())
	if total == 0 {
		return float64(t.NumLeaves())
	}
	h := 0.0
	for _, l := range t.Leaves() {
		if l.Hits == 0 {
			continue
		}
		p := float64(l.Hits) / total
		h -= p * math.Log(p)
	}
	return math.Exp(h)
}

// ADABinary builds a two-operand table from per-operand binning tries. The
// budget is factored into per-dimension budgets proportional to each
// operand's effective spread (a near-constant divisor needs two entries, not
// half the table), then each marginal is allocated with Algorithm 3 and the
// table is the cross product. The full domain remains covered.
func ADABinary(tx, ty *trie.Trie, f BinaryFunc, budget int, rep Representative) ([]BinaryEntry, error) {
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	mx, my := BinarySideBudgets(tx, ty, budget)
	return adaBinarySides(tx, ty, f, mx, my, rep)
}

// BinarySideBudgets factors the joint budget into per-dimension budgets
// proportional to each operand's effective spread (exported for the tenant
// arbiter, which scores each side of a binary tenant separately).
func BinarySideBudgets(tx, ty *trie.Trie, budget int) (mx, my int) {
	sx, sy := EffectiveSupport(tx), EffectiveSupport(ty)
	ratio := sx / sy
	if ratio < 1.0/16 {
		ratio = 1.0 / 16
	}
	if ratio > 16 {
		ratio = 16
	}
	mx = int(math.Floor(math.Sqrt(float64(budget) * ratio)))
	if mx < 1 {
		mx = 1
	}
	if mx > budget {
		mx = budget
	}
	my = budget / mx
	if my < 1 {
		my = 1
		mx = budget
	}
	// Floor each side at 4 entries when the budget allows: even a
	// near-constant operand needs neighbours of its hot value covered, and
	// starving a side to 1–2 entries makes every off-centre lookup fall to
	// the catch-all.
	const sideFloor = 4
	if budget >= sideFloor*sideFloor {
		if my < sideFloor {
			my = sideFloor
			mx = budget / my
		}
		if mx < sideFloor {
			mx = sideFloor
			my = budget / mx
		}
	}
	return mx, my
}

// ADABinaryFixedSplit is the ablation of ADABinary's spread-proportional
// budget factoring: both marginals receive floor(sqrt(budget)) entries
// regardless of how concentrated each operand is.
func ADABinaryFixedSplit(tx, ty *trie.Trie, f BinaryFunc, budget int, rep Representative) ([]BinaryEntry, error) {
	if budget < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, budget)
	}
	side := int(math.Floor(math.Sqrt(float64(budget))))
	if side < 1 {
		side = 1
	}
	return adaBinarySides(tx, ty, f, side, side, rep)
}

func adaBinarySides(tx, ty *trie.Trie, f BinaryFunc, mx, my int, rep Representative) ([]BinaryEntry, error) {
	xs, err := ADAAllocate(tx, mx)
	if err != nil {
		return nil, err
	}
	ys, err := ADAAllocate(ty, my)
	if err != nil {
		return nil, err
	}
	return crossProduct(f, xs, ys, rep), nil
}

// LookupEntry finds the unary entry containing v by binary search. The
// entries must be in value order and tile their covered range, as every
// builder in this package guarantees. It is the software analogue of the
// hardware lookup, used by experiments that would otherwise need to
// materialise enormous joint tables.
func LookupEntry(entries []UnaryEntry, v uint64) (UnaryEntry, bool) {
	return lookupSorted(entries, v)
}

// CoversDomain reports whether the union of entry prefixes covers the full
// operand domain (entries may nest, as in ADA's LPM covers). This is the
// no-miss invariant: a covered domain means Lookup never fails.
func CoversDomain(entries []UnaryEntry) bool {
	if len(entries) == 0 {
		return false
	}
	width := entries[0].P.Width()
	ps := make([]bitstr.Prefix, len(entries))
	for i, e := range entries {
		if e.P.Width() != width {
			return false
		}
		ps[i] = e.P
	}
	bitstr.SortPrefixes(ps)
	var maxHi uint64
	if width >= 64 {
		maxHi = ^uint64(0)
	} else {
		maxHi = uint64(1)<<uint(width) - 1
	}
	var next uint64
	started := false
	for _, p := range ps {
		if started && p.Lo() > next {
			return false
		}
		if !started && p.Lo() != 0 {
			return false
		}
		started = true
		if p.Hi() >= maxHi {
			return true
		}
		if p.Hi()+1 > next {
			next = p.Hi() + 1
		}
	}
	return false
}
