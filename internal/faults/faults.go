// Package faults provides a deterministic, seedable fault-injecting switch
// driver: the chaos layer for the control plane. The paper's controller is a
// gRPC client against a real Tofino driver, and real drivers fail — TCAM
// writes time out, register reads return stale snapshots, latency spikes
// blow the convergence budget. An Injector wraps the controlplane.Driver
// boundary (and, optionally, individual tcam tables at row-write
// granularity) and reproduces those failure modes from a seeded RNG, so
// every chaos run is replayable.
//
// Fault modes:
//
//   - transient write failures: InstallMonitoring / PopulateCalc /
//     ResetRegisters fail with ErrInjected at a configured probability, and
//     succeed when retried;
//   - persistent outages: the driver goes down for a run of consecutive
//     operations (ErrOutage), modelling a driver restart or a wedged session;
//   - dropped / stale register snapshots: ReadRegisters fails, or returns
//     the previous snapshot — including one whose bin count no longer
//     matches the installed table;
//   - per-op latency with spikes: every operation charges latency drawn
//     from a configurable distribution, surfaced through the
//     controlplane.LatencyReporter seam into round delays and deadlines;
//   - capacity pressure: installs fail with ErrPressure, modelling TCAM
//     space transiently claimed by other tables on the switch;
//   - per-row write failures: AttachTable hooks a tcam.Table so individual
//     row writes fail mid-reconciliation, exercising ApplyRows' partial
//     failure contract and ApplyRowsAtomic's rollback.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

var (
	// ErrInjected reports a transient injected failure; retrying may succeed.
	ErrInjected = errors.New("faults: injected driver failure")
	// ErrOutage reports an injected persistent outage; the driver stays down
	// for a run of operations.
	ErrOutage = fmt.Errorf("%w: driver outage", ErrInjected)
	// ErrPressure reports injected capacity pressure on a table install.
	ErrPressure = fmt.Errorf("%w: TCAM capacity pressure", ErrInjected)
	// ErrAckDropped reports a write whose acknowledgement was lost: the
	// caller sees a failure, but the operation landed in the hardware. The
	// most treacherous driver fault — a retry reprograms, a give-up leaves
	// the controller's shadow behind reality until an audit catches it.
	ErrAckDropped = fmt.Errorf("%w: ack dropped (write landed)", ErrInjected)
	// ErrProfile reports an invalid fault profile.
	ErrProfile = errors.New("faults: invalid profile")
)

// Dist is a latency distribution sampled once per affected operation.
type Dist interface {
	Sample(r *rand.Rand) time.Duration
}

// Fixed is a constant latency.
type Fixed time.Duration

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Uniform draws uniformly from [Min, Max].
type Uniform struct{ Min, Max time.Duration }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)))
}

// Exponential draws from an exponential distribution with the given mean —
// the heavy-ish tail typical of driver RPC latency.
type Exponential struct{ Mean time.Duration }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) time.Duration {
	if e.Mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(e.Mean))
}

// Profile parameterises the injector. The zero value injects nothing.
type Profile struct {
	// Seed seeds the RNG; equal seeds and call sequences replay identically.
	Seed int64
	// WriteFailure is the per-operation transient failure probability for
	// driver writes (install, populate, reset).
	WriteFailure float64
	// RowFailure is the per-row write failure probability for tables hooked
	// with AttachTable.
	RowFailure float64
	// SnapshotDrop is the probability a ReadRegisters fails outright.
	SnapshotDrop float64
	// SnapshotStale is the probability a ReadRegisters returns the previous
	// snapshot instead of fresh state.
	SnapshotStale float64
	// OutageProb is the per-operation probability that a persistent outage
	// starts; the driver then fails every operation for OutageOps ops.
	OutageProb float64
	// OutageOps is the outage length in operations (default 8 when an
	// outage can start).
	OutageOps int
	// CapacityPressure is the probability an install/populate fails with
	// ErrPressure.
	CapacityPressure float64
	// Latency, when set, is charged on every driver operation.
	Latency Dist
	// SpikeProb is the probability an operation additionally pays Spike.
	SpikeProb float64
	// Spike is the latency-spike distribution.
	Spike Dist

	// AckDrop is the probability a successful driver write loses its ack:
	// the caller sees ErrAckDropped but the operation landed.
	AckDrop float64
	// AuditStale is the probability a read-back audit returns a stale
	// all-clean result instead of reading the hardware, delaying detection.
	AuditStale float64
	// CrashProb is the per-crash-point probability the controller process
	// dies there (consumed through Injector.CrashHook).
	CrashProb float64
	// Corrupt, Ghost, and DropRow are the per-tamper-round probabilities
	// (consumed through Injector.TamperStore) of a silent payload bit-flip,
	// a ghost row insert, and a silent row drop respectively.
	Corrupt float64
	Ghost   float64
	DropRow float64
}

// DefaultProfile returns the default chaos profile: 5% transient write
// failure, 1% stale snapshots, seeded.
func DefaultProfile() Profile {
	return Profile{
		Seed:          1,
		WriteFailure:  0.05,
		SnapshotStale: 0.01,
	}
}

// OutageProfile returns a harsher profile layering driver outages and
// latency spikes on top of DefaultProfile, for degraded-mode soak tests.
func OutageProfile() Profile {
	p := DefaultProfile()
	p.OutageProb = 0.02
	p.OutageOps = 6
	p.RowFailure = 0.02
	p.Latency = Exponential{Mean: 20 * time.Microsecond}
	p.SpikeProb = 0.05
	p.Spike = Fixed(400 * time.Microsecond)
	return p
}

func (p Profile) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"write", p.WriteFailure}, {"row", p.RowFailure},
		{"drop", p.SnapshotDrop}, {"stale", p.SnapshotStale},
		{"outage", p.OutageProb}, {"pressure", p.CapacityPressure},
		{"spikeprob", p.SpikeProb}, {"ackdrop", p.AckDrop},
		{"auditstale", p.AuditStale}, {"crash", p.CrashProb},
		{"corrupt", p.Corrupt}, {"ghost", p.Ghost}, {"droprow", p.DropRow},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%w: %s probability %g outside [0,1]", ErrProfile, f.name, f.v)
		}
	}
	if p.OutageOps < 0 {
		return fmt.Errorf("%w: outage length %d", ErrProfile, p.OutageOps)
	}
	return nil
}

// Stats counts injected events.
type Stats struct {
	// Ops is the driver operations observed.
	Ops uint64
	// WriteFailures is the transient write failures injected.
	WriteFailures uint64
	// RowFailures is the per-row write failures injected via table hooks.
	RowFailures uint64
	// SnapshotDrops and StaleSnapshots count the register-read faults.
	SnapshotDrops  uint64
	StaleSnapshots uint64
	// Outages counts outages started; OutageOps counts operations failed
	// inside one.
	Outages   uint64
	OutageOps uint64
	// PressureFailures counts injected capacity-pressure failures.
	PressureFailures uint64
	// Spikes counts latency spikes injected.
	Spikes uint64
	// Injected is the total latency injected.
	Injected time.Duration
	// AckDrops counts successful writes whose ack was dropped.
	AckDrops uint64
	// StaleAudits counts audits answered with a stale all-clean result.
	StaleAudits uint64
	// Crashes counts injected controller crashes.
	Crashes uint64
	// TamperedRows, GhostRows, and DroppedRows count silent corruptions
	// applied through TamperStore and the direct tamper helpers.
	TamperedRows uint64
	GhostRows    uint64
	DroppedRows  uint64
}

// Injector owns the seeded RNG and fault state shared by every driver and
// table hook it creates. It is safe for concurrent use.
type Injector struct {
	mu         sync.Mutex
	prof       Profile
	rng        *rand.Rand
	outageLeft int
	disarmed   bool
	stats      Stats
}

// New validates the profile and builds an injector.
func New(prof Profile) (*Injector, error) {
	if err := prof.validate(); err != nil {
		return nil, err
	}
	if prof.OutageProb > 0 && prof.OutageOps == 0 {
		prof.OutageOps = 8
	}
	return &Injector{prof: prof, rng: rand.New(rand.NewSource(prof.Seed))}, nil
}

// MustNew is New but panics on error; for tests and static profiles.
func MustNew(prof Profile) *Injector {
	in, err := New(prof)
	if err != nil {
		panic(err)
	}
	return in
}

// Profile returns the effective profile.
func (in *Injector) Profile() Profile { return in.prof }

// Stats returns a snapshot of the injected-event counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// SetArmed toggles injection. Disarming silences every fault mode — driver
// ops, row hooks, tampering, crashes — and clears any in-progress outage,
// so a chaos run can end with a clean convergence tail; the RNG stream is
// left untouched for replayability of the armed prefix. Injectors start
// armed.
func (in *Injector) SetArmed(v bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disarmed = !v
	if !v {
		in.outageLeft = 0
	}
}

// Armed reports whether injection is active.
func (in *Injector) Armed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.disarmed
}

// Wrap returns a fault-injecting driver around inner. Its signature matches
// controlplane.Config.WrapDriver, so plumbing an injector into a controller
// is one assignment.
func (in *Injector) Wrap(inner controlplane.Driver) controlplane.Driver {
	return &Driver{in: in, inner: inner}
}

// AttachTable installs a per-row write hook on t that fails each physical
// row write with the profile's RowFailure probability. Use it on calculation
// tables to exercise mid-reconciliation failures and the atomic commit's
// rollback.
func (in *Injector) AttachTable(t *tcam.Table) { in.AttachRows(t) }

// RowHooker is any store exposing the per-row write-hook seam: a physical
// tcam.Table, a tenant.Partition (faults every slice's commits), or a
// tenant.Slice (faults exactly one tenant's commits, leaving its neighbours
// on the shared table untouched).
type RowHooker interface {
	SetWriteHook(tcam.WriteHook)
}

// AttachRows installs the injector's per-row failure hook on any RowHooker.
func (in *Injector) AttachRows(h RowHooker) {
	h.SetWriteHook(func(op tcam.WriteOp) error {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.disarmed {
			return nil
		}
		if in.prof.RowFailure > 0 && in.rng.Float64() < in.prof.RowFailure {
			in.stats.RowFailures++
			return fmt.Errorf("%w: row %v", ErrInjected, op)
		}
		return nil
	})
}

// opStart runs the shared per-operation fault machinery: outage state,
// latency (base + spike), and the operation counter. It returns a non-nil
// error when the operation must fail before reaching the inner driver.
// latency is accumulated onto d regardless, as even failed RPCs take time.
func (in *Injector) opStart(d *Driver) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	if in.disarmed {
		return nil
	}
	if in.prof.Latency != nil {
		l := in.prof.Latency.Sample(in.rng)
		d.injected += l
		in.stats.Injected += l
	}
	if in.prof.Spike != nil && in.prof.SpikeProb > 0 && in.rng.Float64() < in.prof.SpikeProb {
		l := in.prof.Spike.Sample(in.rng)
		d.injected += l
		in.stats.Injected += l
		in.stats.Spikes++
	}
	if in.outageLeft > 0 {
		in.outageLeft--
		in.stats.OutageOps++
		return ErrOutage
	}
	if in.prof.OutageProb > 0 && in.rng.Float64() < in.prof.OutageProb {
		in.outageLeft = in.prof.OutageOps - 1 // this op fails too
		in.stats.Outages++
		in.stats.OutageOps++
		return ErrOutage
	}
	return nil
}

// StartOutage forces an outage covering the next ops driver operations,
// regardless of OutageProb. Deterministic outage scheduling for tests and
// replay tooling.
func (in *Injector) StartOutage(ops int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if ops > in.outageLeft {
		in.outageLeft = ops
	}
	in.stats.Outages++
}

// roll returns true with probability p and charges the named counter.
func (in *Injector) roll(p float64, counter *uint64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.disarmed {
		return false
	}
	if in.rng.Float64() < p {
		*counter++
		return true
	}
	return false
}

// Driver is the fault-injecting controlplane.Driver. Create one per
// controller with Injector.Wrap; drivers created from the same injector
// share its RNG, outage state, and statistics.
type Driver struct {
	in    *Injector
	inner controlplane.Driver

	mu       sync.Mutex
	lastSnap []uint64
	injected time.Duration
}

var _ controlplane.Driver = (*Driver)(nil)
var _ controlplane.LatencyReporter = (*Driver)(nil)
var _ controlplane.DeltaPopulator = (*Driver)(nil)

// Unwrap exposes the wrapped driver (controlplane uses this to find the
// in-process monitor behind the fault layer).
func (d *Driver) Unwrap() controlplane.Driver { return d.inner }

// Width implements controlplane.Driver (local bookkeeping, never faulted).
func (d *Driver) Width() int { return d.inner.Width() }

// MonitorCapacity implements controlplane.Driver (never faulted).
func (d *Driver) MonitorCapacity() int { return d.inner.MonitorCapacity() }

// NumBins implements controlplane.Driver (never faulted: it reads the
// controller-side shadow, not the wire).
func (d *Driver) NumBins() int { return d.inner.NumBins() }

// TakeInjectedLatency implements controlplane.LatencyReporter.
func (d *Driver) TakeInjectedLatency() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	l := d.injected
	d.injected = 0
	return l
}

// ReadRegisters implements controlplane.Driver with drop and stale faults.
func (d *Driver) ReadRegisters() ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return nil, err
	}
	if d.in.roll(d.in.prof.SnapshotDrop, &d.in.stats.SnapshotDrops) {
		return nil, fmt.Errorf("%w: snapshot dropped", ErrInjected)
	}
	if d.lastSnap != nil && d.in.roll(d.in.prof.SnapshotStale, &d.in.stats.StaleSnapshots) {
		stale := make([]uint64, len(d.lastSnap))
		copy(stale, d.lastSnap)
		return stale, nil
	}
	snap, err := d.inner.ReadRegisters()
	if err != nil {
		return nil, err
	}
	d.lastSnap = make([]uint64, len(snap))
	copy(d.lastSnap, snap)
	return snap, nil
}

// ResetRegisters implements controlplane.Driver with transient write faults.
func (d *Driver) ResetRegisters() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return 0, err
	}
	if d.in.roll(d.in.prof.WriteFailure, &d.in.stats.WriteFailures) {
		return 0, fmt.Errorf("%w: register reset", ErrInjected)
	}
	n, err := d.inner.ResetRegisters()
	if err != nil {
		return 0, err
	}
	if d.in.roll(d.in.prof.AckDrop, &d.in.stats.AckDrops) {
		return 0, fmt.Errorf("%w: register reset", ErrAckDropped)
	}
	return n, nil
}

// InstallMonitoring implements controlplane.Driver with transient write and
// capacity-pressure faults. Injected failures fire before the inner install,
// so the previously installed bins remain intact (the inner install is
// itself atomic).
func (d *Driver) InstallMonitoring(prefixes []bitstr.Prefix) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return 0, err
	}
	if d.in.roll(d.in.prof.WriteFailure, &d.in.stats.WriteFailures) {
		return 0, fmt.Errorf("%w: monitoring install", ErrInjected)
	}
	if d.in.roll(d.in.prof.CapacityPressure, &d.in.stats.PressureFailures) {
		return 0, ErrPressure
	}
	n, err := d.inner.InstallMonitoring(prefixes)
	if err != nil {
		return 0, err
	}
	if d.in.roll(d.in.prof.AckDrop, &d.in.stats.AckDrops) {
		return 0, fmt.Errorf("%w: monitoring install", ErrAckDropped)
	}
	return n, nil
}

// PopulateCalc implements controlplane.Driver with transient write and
// capacity-pressure faults.
func (d *Driver) PopulateCalc(tr *trie.Trie, budget int) (int, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return 0, 0, err
	}
	if d.in.roll(d.in.prof.WriteFailure, &d.in.stats.WriteFailures) {
		return 0, 0, fmt.Errorf("%w: calc populate", ErrInjected)
	}
	if d.in.roll(d.in.prof.CapacityPressure, &d.in.stats.PressureFailures) {
		return 0, 0, ErrPressure
	}
	w, comp, err := d.inner.PopulateCalc(tr, budget)
	if err != nil {
		return 0, 0, err
	}
	if d.in.roll(d.in.prof.AckDrop, &d.in.stats.AckDrops) {
		return 0, 0, fmt.Errorf("%w: calc populate", ErrAckDropped)
	}
	return w, comp, nil
}

// PopulateCalcDelta implements controlplane.DeltaPopulator with the same
// fault rolls as PopulateCalc — an injected failure fires before the inner
// driver either way, so the delta path degrades exactly like the full one.
// When the wrapped driver has no incremental path, the fall back is the full
// PopulateCalc with zero reuse.
func (d *Driver) PopulateCalcDelta(tr *trie.Trie, budget int) (int, int, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return 0, 0, 0, err
	}
	if d.in.roll(d.in.prof.WriteFailure, &d.in.stats.WriteFailures) {
		return 0, 0, 0, fmt.Errorf("%w: calc populate", ErrInjected)
	}
	if d.in.roll(d.in.prof.CapacityPressure, &d.in.stats.PressureFailures) {
		return 0, 0, 0, ErrPressure
	}
	var writes, computed, reused int
	var err error
	if dp, ok := d.inner.(controlplane.DeltaPopulator); ok {
		writes, computed, reused, err = dp.PopulateCalcDelta(tr, budget)
	} else {
		writes, computed, err = d.inner.PopulateCalc(tr, budget)
	}
	if err != nil {
		return 0, 0, 0, err
	}
	if d.in.roll(d.in.prof.AckDrop, &d.in.stats.AckDrops) {
		return 0, 0, 0, fmt.Errorf("%w: calc populate", ErrAckDropped)
	}
	return writes, computed, reused, nil
}

// PlaceTiers implements controlplane.TierPlacer with the same transient
// write faults as the populate paths. An ack drop fires after the inner
// placement, so the moves that landed are still reported with the error —
// the controller charges them even on a failed call.
func (d *Driver) PlaceTiers(tr *trie.Trie) (controlplane.TierMoves, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tp, ok := d.inner.(controlplane.TierPlacer)
	if !ok {
		return controlplane.TierMoves{}, false, nil
	}
	if err := d.in.opStart(d); err != nil {
		return controlplane.TierMoves{}, false, err
	}
	if d.in.roll(d.in.prof.WriteFailure, &d.in.stats.WriteFailures) {
		return controlplane.TierMoves{}, false, fmt.Errorf("%w: tier placement", ErrInjected)
	}
	moves, placed, err := tp.PlaceTiers(tr)
	if err != nil {
		return moves, placed, err
	}
	if d.in.roll(d.in.prof.AckDrop, &d.in.stats.AckDrops) {
		return moves, placed, fmt.Errorf("%w: tier placement", ErrAckDropped)
	}
	return moves, placed, nil
}

// ParseProfile parses a compact comma-separated key=value fault spec, e.g.
// "seed=7,write=0.05,stale=0.01,outage=0.02,outageops=6,latency=20us,spike=400us,spikeprob=0.05".
// Keys: seed, write, row, drop, stale, outage, outageops, pressure, latency
// (mean of an exponential), spike (fixed), spikeprob. The literal "default"
// returns DefaultProfile; "outages" returns OutageProfile.
func ParseProfile(spec string) (Profile, error) {
	switch strings.TrimSpace(spec) {
	case "", "default":
		return DefaultProfile(), nil
	case "outages":
		return OutageProfile(), nil
	}
	p := DefaultProfile()
	// An explicit spec starts from zero probabilities; only "default" and
	// "outages" carry presets.
	p = Profile{Seed: p.Seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Profile{}, fmt.Errorf("%w: %q is not key=value", ErrProfile, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "write":
			p.WriteFailure, err = strconv.ParseFloat(val, 64)
		case "row":
			p.RowFailure, err = strconv.ParseFloat(val, 64)
		case "drop":
			p.SnapshotDrop, err = strconv.ParseFloat(val, 64)
		case "stale":
			p.SnapshotStale, err = strconv.ParseFloat(val, 64)
		case "outage":
			p.OutageProb, err = strconv.ParseFloat(val, 64)
		case "outageops":
			p.OutageOps, err = strconv.Atoi(val)
		case "pressure":
			p.CapacityPressure, err = strconv.ParseFloat(val, 64)
		case "latency":
			var dur time.Duration
			dur, err = time.ParseDuration(val)
			p.Latency = Exponential{Mean: dur}
		case "spike":
			var dur time.Duration
			dur, err = time.ParseDuration(val)
			p.Spike = Fixed(dur)
		case "spikeprob":
			p.SpikeProb, err = strconv.ParseFloat(val, 64)
		case "ackdrop":
			p.AckDrop, err = strconv.ParseFloat(val, 64)
		case "auditstale":
			p.AuditStale, err = strconv.ParseFloat(val, 64)
		case "crash":
			p.CrashProb, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			p.Corrupt, err = strconv.ParseFloat(val, 64)
		case "ghost":
			p.Ghost, err = strconv.ParseFloat(val, 64)
		case "droprow":
			p.DropRow, err = strconv.ParseFloat(val, 64)
		default:
			return Profile{}, fmt.Errorf("%w: unknown key %q", ErrProfile, key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("%w: %s=%q: %v", ErrProfile, key, val, err)
		}
	}
	if err := p.validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// String renders the profile compactly (parsable by ParseProfile).
func (p Profile) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("write", p.WriteFailure)
	add("row", p.RowFailure)
	add("drop", p.SnapshotDrop)
	add("stale", p.SnapshotStale)
	add("outage", p.OutageProb)
	if p.OutageProb > 0 {
		parts = append(parts, "outageops="+strconv.Itoa(p.OutageOps))
	}
	add("pressure", p.CapacityPressure)
	add("spikeprob", p.SpikeProb)
	add("ackdrop", p.AckDrop)
	add("auditstale", p.AuditStale)
	add("crash", p.CrashProb)
	add("corrupt", p.Corrupt)
	add("ghost", p.Ghost)
	add("droprow", p.DropRow)
	sort.Strings(parts[1:])
	return strings.Join(parts, ",")
}
