package faults

import (
	"errors"

	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/tcam"
)

// Silent-fault layer: faults the controller cannot observe at the driver
// boundary — payload bit-flips, ghost rows, dropped rows, stale audit
// read-backs, dropped acks, and injected controller crashes. Visible faults
// (faults.go) make operations fail; silent faults make them lie.

var _ controlplane.Auditor = (*Driver)(nil)

// AuditCalc implements controlplane.Auditor. The audit is a driver RPC like
// any other, so it pays the shared per-op machinery (latency, outages); on
// top of that, with probability AuditStale it returns a stale all-clean
// report without reading the hardware — the audit analogue of a stale
// register snapshot — which delays detection by one audit period.
func (d *Driver) AuditCalc(repair bool) (controlplane.AuditReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.in.opStart(d); err != nil {
		return controlplane.AuditReport{}, err
	}
	if d.in.roll(d.in.prof.AuditStale, &d.in.stats.StaleAudits) {
		return controlplane.AuditReport{}, nil
	}
	if aud, ok := d.inner.(controlplane.Auditor); ok {
		return aud.AuditCalc(repair)
	}
	return controlplane.AuditReport{}, nil
}

// CrashHook returns a controlplane.Config.CrashHook that fires with the
// profile's CrashProb at every crash point, drawn from the injector's
// seeded RNG. Assign it to the controller config of a chaos run to model
// controller restarts straddling the journal boundary.
func (in *Injector) CrashHook() func(controlplane.CrashPoint) bool {
	return func(controlplane.CrashPoint) bool {
		return in.roll(in.prof.CrashProb, &in.stats.Crashes)
	}
}

// TamperTarget is a store the injector can silently corrupt: the read-back
// seam to pick victims plus the tamper seam to hit them. Both tcam.Table
// and tenant.Slice qualify; a slice target keeps every injected fault
// inside that tenant's band.
type TamperTarget interface {
	ReadRows() ([]tcam.RowDigest, error)
	FieldWidths() []int
	tcam.Tamperer
}

// TamperReport counts the silent corruptions one TamperStore call applied.
type TamperReport struct {
	Corrupted int
	Ghosts    int
	Dropped   int
}

// TamperStore applies one round of silent-corruption rolls to st: with
// probability Corrupt a random installed row's payload gets a bit flipped,
// with probability Ghost a row the controller never installed appears, and
// with probability DropRow a random installed row vanishes. All three
// bypass the store's write hooks, stats, and Version counter — the
// controller's shadow keeps believing the old contents until an audit reads
// the hardware back.
func (in *Injector) TamperStore(st TamperTarget) (TamperReport, error) {
	var rep TamperReport
	in.mu.Lock()
	if in.disarmed {
		in.mu.Unlock()
		return rep, nil
	}
	doCorrupt := in.prof.Corrupt > 0 && in.rng.Float64() < in.prof.Corrupt
	doGhost := in.prof.Ghost > 0 && in.rng.Float64() < in.prof.Ghost
	doDrop := in.prof.DropRow > 0 && in.rng.Float64() < in.prof.DropRow
	in.mu.Unlock()
	if doCorrupt {
		n, err := in.CorruptRows(st, 1)
		if err != nil {
			return rep, err
		}
		rep.Corrupted += n
	}
	if doGhost {
		n, err := in.InsertGhosts(st, 1)
		if err != nil {
			return rep, err
		}
		rep.Ghosts += n
	}
	if doDrop {
		n, err := in.DropRows(st, 1)
		if err != nil {
			return rep, err
		}
		rep.Dropped += n
	}
	return rep, nil
}

// pickRows draws n distinct installed rows from st, seeded.
func (in *Injector) pickRows(st TamperTarget, n int) ([]tcam.RowDigest, error) {
	rows, err := st.ReadRows()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if n > len(rows) {
		n = len(rows)
	}
	in.mu.Lock()
	in.rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	in.mu.Unlock()
	return rows[:n], nil
}

// CorruptRows flips one payload bit in each of n distinct random installed
// rows, returning how many were actually corrupted (bounded by the table
// population; rows whose payload is not a uint64 are skipped). Seeded and
// silent: no hook, no stats, no Version bump on the store.
func (in *Injector) CorruptRows(st TamperTarget, n int) (int, error) {
	victims, err := in.pickRows(st, n)
	if err != nil {
		return 0, err
	}
	done := 0
	for _, v := range victims {
		val, ok := v.Data.(uint64)
		if !ok {
			continue
		}
		in.mu.Lock()
		bit := uint(in.rng.Intn(64))
		in.mu.Unlock()
		flipped := val ^ (uint64(1) << bit)
		if err := st.TamperData(v.Fields, v.Priority, flipped); err != nil {
			return done, err
		}
		done++
	}
	in.mu.Lock()
	in.stats.TamperedRows += uint64(done)
	in.mu.Unlock()
	return done, nil
}

// InsertGhosts installs up to n fully-specified ghost rows with random
// in-width operand values and random payloads. A ghost colliding with an
// installed row's match key is skipped (the hardware slot is taken), so the
// returned count may be lower.
func (in *Injector) InsertGhosts(st TamperTarget, n int) (int, error) {
	widths := st.FieldWidths()
	done := 0
	for i := 0; i < n; i++ {
		fields := make([]tcam.Field, len(widths))
		in.mu.Lock()
		for j, w := range widths {
			var mask uint64
			if w >= 64 {
				mask = ^uint64(0)
			} else {
				mask = uint64(1)<<w - 1
			}
			fields[j] = tcam.Field{Value: in.rng.Uint64() & mask, Mask: mask}
		}
		data := in.rng.Uint64()
		in.mu.Unlock()
		err := st.TamperInsert(fields, 0, data)
		switch {
		case err == nil:
			done++
		case isSkippableGhostErr(err):
			// Key collision or a full table: the ghost found no slot.
		default:
			return done, err
		}
	}
	in.mu.Lock()
	in.stats.GhostRows += uint64(done)
	in.mu.Unlock()
	return done, nil
}

// isSkippableGhostErr reports ghost-insert failures that model "no slot"
// rather than a programming error.
func isSkippableGhostErr(err error) bool {
	return errors.Is(err, tcam.ErrDeltaConflict) || errors.Is(err, tcam.ErrCapacity)
}

// DropRows silently deletes n distinct random installed rows.
func (in *Injector) DropRows(st TamperTarget, n int) (int, error) {
	victims, err := in.pickRows(st, n)
	if err != nil {
		return 0, err
	}
	for _, v := range victims {
		if err := st.TamperDelete(v.Fields, v.Priority); err != nil {
			return 0, err
		}
	}
	in.mu.Lock()
	in.stats.DroppedRows += uint64(len(victims))
	in.mu.Unlock()
	return len(victims), nil
}
