package faults_test

import (
	"errors"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// engineTarget mirrors the adapter core builds over a unary engine.
type engineTarget struct {
	engine *arith.UnaryEngine
	op     arith.UnaryOp
}

func (t *engineTarget) Populate(tr *trie.Trie, budget int) (int, int, error) {
	entries, err := population.ADAUnary(tr, t.op.Func(), budget, population.Midpoint)
	if err != nil {
		return 0, 0, err
	}
	writes, err := t.engine.Reload(entries)
	return writes, len(entries), err
}

func newFaultySystem(t *testing.T, prof faults.Profile) (*controlplane.Controller, *arith.UnaryEngine, *faults.Injector) {
	t.Helper()
	in, err := faults.New(prof)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New("mon", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := arith.NewUnaryEngine("calc", 16, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controlplane.DefaultConfig(12, 64)
	cfg.WrapDriver = in.Wrap
	ctl, err := controlplane.New(cfg, mon, &engineTarget{engine: engine, op: arith.OpSquare})
	if err != nil {
		t.Fatal(err)
	}
	return ctl, engine, in
}

// TestChaosRoundsStayConsistent drives many rounds under the default fault
// profile and asserts the transactional invariants after every round: the
// calculation table is fully old- or fully new-generation, covers the whole
// domain, and driver/controller bin state never diverges for long.
func TestChaosRoundsStayConsistent(t *testing.T) {
	ctl, engine, in := newFaultySystem(t, faults.DefaultProfile())
	in.AttachTable(engine.Table())
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)

	degraded := 0
	for round := 0; round < 200; round++ {
		ctl.Monitor().ObserveAll(sampler.Draw(500))
		gen, fp := engine.Table().Generation(), engine.Table().Fingerprint()
		rep, err := ctl.Round()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Degraded {
			degraded++
			// A degraded round must leave the calc table untouched.
			if engine.Table().Generation() != gen || engine.Table().Fingerprint() != fp {
				t.Fatalf("round %d: degraded round mutated the calc table", round)
			}
		} else if engine.Table().Generation() == gen && engine.Table().Fingerprint() != fp {
			t.Fatalf("round %d: table changed without a generation commit", round)
		}
		// Full-domain cover: every operand must resolve.
		for _, x := range []uint64{0, 1, 4000, 9999, 1<<16 - 1} {
			if _, err := engine.Eval(x); err != nil {
				t.Fatalf("round %d: lookup miss for %d: %v", round, x, err)
			}
		}
	}
	st := in.Stats()
	if st.WriteFailures == 0 && st.RowFailures == 0 && st.StaleSnapshots == 0 {
		t.Error("fault profile injected nothing across 200 rounds")
	}
	t.Logf("degraded=%d stats=%+v totals=%+v", degraded, st, ctl.Totals())
}

// TestDeterminism: equal seeds and call sequences must replay identically.
func TestDeterminism(t *testing.T) {
	run := func() (faults.Stats, controlplane.Totals) {
		ctl, engine, in := newFaultySystem(t, faults.OutageProfile())
		in.AttachTable(engine.Table())
		sampler := dist.NewIntSampler(
			dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
			1<<16-1, 9)
		for round := 0; round < 80; round++ {
			ctl.Monitor().ObserveAll(sampler.Draw(300))
			if _, err := ctl.Round(); err != nil {
				t.Fatal(err)
			}
		}
		return in.Stats(), ctl.Totals()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged across identical seeded runs:\n%+v\n%+v", s1, s2)
	}
	if t1 != t2 {
		t.Errorf("totals diverged across identical seeded runs:\n%+v\n%+v", t1, t2)
	}
}

// TestOutageDrivesDegradedMode: a long outage must flip the controller
// unhealthy, and recovery must resume normal rounds.
func TestOutageDrivesDegradedMode(t *testing.T) {
	ctl, engine, in := newFaultySystem(t, faults.Profile{Seed: 3})
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)

	// Converge once so the engine holds a good population to serve from.
	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	if _, err := ctl.Round(); err != nil {
		t.Fatal(err)
	}

	in.StartOutage(40)
	sawUnhealthy := false
	for round := 0; round < 12; round++ {
		ctl.Monitor().ObserveAll(sampler.Draw(200))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Health == controlplane.Unhealthy {
			sawUnhealthy = true
		}
		// Lookups keep answering from the last good population throughout.
		if _, err := engine.Eval(4000); err != nil {
			t.Fatalf("round %d: lookup failed during outage: %v", round, err)
		}
	}
	if !sawUnhealthy {
		t.Fatal("outage never drove the controller unhealthy")
	}
	// Probe rounds consume the outage budget (one op each) and recover.
	recovered := false
	for round := 0; round < 60 && !recovered; round++ {
		ctl.Monitor().ObserveAll(sampler.Draw(200))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		recovered = !rep.Degraded
	}
	if !recovered {
		t.Fatal("controller never recovered after the outage drained")
	}
	if ctl.Health() != controlplane.Healthy {
		t.Errorf("health = %v after recovery", ctl.Health())
	}
	if in.Stats().OutageOps == 0 {
		t.Error("outage ops not counted")
	}
}

// TestStaleSnapshotAfterExpansion: the injector caches the last snapshot, so
// after the monitoring table grows a stale read returns the wrong shape and
// the controller must degrade rather than corrupt the trie.
func TestStaleSnapshotAfterExpansion(t *testing.T) {
	prof := faults.Profile{Seed: 11, SnapshotStale: 1} // every read after the first is stale
	ctl, _, _ := newFaultySystem(t, prof)
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 60}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)
	// Round 1 primes the snapshot cache and reshapes under skew; later
	// rounds read stale snapshots. Same bin count → stale-but-loadable;
	// after an expansion the shape mismatches and must degrade.
	stale := 0
	for round := 0; round < 20; round++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		if rep.DegradedReason == controlplane.ReasonStaleSnapshot {
			stale++
		}
		if got, want := ctl.Driver().NumBins(), ctl.Trie().NumLeaves(); got != want {
			t.Fatalf("round %d: bins %d != leaves %d", round, got, want)
		}
	}
	if stale == 0 {
		t.Error("no stale-snapshot degradations observed despite stale=1 profile")
	}
}

// TestAttachTableRowFaults: with every row write failing, the atomic apply
// rolls back and the plain apply documents its partial state.
func TestAttachTableRowFaults(t *testing.T) {
	in := faults.MustNew(faults.Profile{Seed: 5, RowFailure: 1})
	tb := tcam.MustNew("t", 0, 8)
	rows := []tcam.Row{}
	for _, s := range []string{"0xxxxxxx", "1xxxxxxx"} {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, tcam.RowFromPrefix(p, uint64(1)))
	}
	if _, err := tb.ApplyRows(rows); err != nil {
		t.Fatal(err)
	}
	fp := tb.Fingerprint()
	in.AttachTable(tb)
	_, err := tb.ApplyRowsAtomic([]tcam.Row{rows[0]})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error = %v, want ErrInjected", err)
	}
	if tb.Fingerprint() != fp {
		t.Error("atomic apply leaked partial state under row faults")
	}
	if in.Stats().RowFailures == 0 {
		t.Error("row failures not counted")
	}
}

// TestParseProfile round-trips specs and rejects junk.
func TestParseProfile(t *testing.T) {
	p, err := faults.ParseProfile("seed=7,write=0.1,stale=0.02,outage=0.01,outageops=4,latency=20us,spike=400us,spikeprob=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.WriteFailure != 0.1 || p.SnapshotStale != 0.02 ||
		p.OutageProb != 0.01 || p.OutageOps != 4 || p.SpikeProb != 0.05 {
		t.Errorf("parsed profile = %+v", p)
	}
	if p.Latency == nil || p.Spike == nil {
		t.Error("latency distributions not parsed")
	}
	if _, err := faults.ParseProfile("write=2"); err == nil {
		t.Error("probability 2 accepted")
	}
	if _, err := faults.ParseProfile("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if def, err := faults.ParseProfile("default"); err != nil || def != faults.DefaultProfile() {
		t.Errorf("default spec: %+v, %v", def, err)
	}
	if _, err := faults.ParseProfile("seed=1,spikeprob=0.5"); err != nil {
		t.Errorf("spec without distributions rejected: %v", err)
	}
}

// TestLatencySpikesSurfaceInDelay: injected latency must appear in the
// round's Delay through the LatencyReporter seam.
func TestLatencySpikesSurfaceInDelay(t *testing.T) {
	prof := faults.Profile{Seed: 2, Latency: faults.Fixed(250 * time.Microsecond)}
	ctl, _, in := newFaultySystem(t, prof)
	ctl.Monitor().ObserveAll([]uint64{1, 2, 3})
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.InjectedLatency == 0 {
		t.Fatal("no injected latency surfaced")
	}
	if rep.Delay <= rep.InjectedLatency {
		t.Errorf("Delay %v does not include injected latency %v on top of op costs",
			rep.Delay, rep.InjectedLatency)
	}
	if in.Stats().Injected == 0 {
		t.Error("injector did not account injected latency")
	}
}
