package faults_test

import (
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// newWrapped builds an injector-wrapped direct driver over a real engine.
func newWrapped(t *testing.T, prof faults.Profile) (controlplane.Driver, *faults.Injector, *monitor.Monitor, *arith.UnaryEngine) {
	t.Helper()
	in := faults.MustNew(prof)
	mon, err := monitor.New("mon", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := arith.NewUnaryEngine("calc", 8, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	drv := in.Wrap(controlplane.NewDirectDriver(mon, &engineTarget{engine: engine, op: arith.OpSquare}))
	return drv, in, mon, engine
}

// TestEveryInjectedModeWrapsErrInjected is the sentinel contract: every
// fault the injector can produce must round-trip through errors.Is so
// callers can classify injected failures without string matching.
func TestEveryInjectedModeWrapsErrInjected(t *testing.T) {
	root, err := bitstr.Root(8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trie.NewInitial(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	install := func(d controlplane.Driver) error { _, err := d.InstallMonitoring([]bitstr.Prefix{root}); return err }
	read := func(d controlplane.Driver) error { _, err := d.ReadRegisters(); return err }
	reset := func(d controlplane.Driver) error { _, err := d.ResetRegisters(); return err }
	populate := func(d controlplane.Driver) error { _, _, err := d.PopulateCalc(tr, 16); return err }
	populateDelta := func(d controlplane.Driver) error {
		_, _, _, err := d.(controlplane.DeltaPopulator).PopulateCalcDelta(tr, 16)
		return err
	}

	cases := []struct {
		name  string
		prof  faults.Profile
		setup func(in *faults.Injector)
		op    func(d controlplane.Driver) error
		want  []error
	}{
		{"write-failure", faults.Profile{Seed: 1, WriteFailure: 1}, nil, install, []error{faults.ErrInjected}},
		{"snapshot-drop", faults.Profile{Seed: 1, SnapshotDrop: 1}, nil, read, []error{faults.ErrInjected}},
		{"outage", faults.Profile{Seed: 1}, func(in *faults.Injector) { in.StartOutage(4) }, read,
			[]error{faults.ErrInjected, faults.ErrOutage}},
		{"capacity-pressure", faults.Profile{Seed: 1, CapacityPressure: 1}, nil, install,
			[]error{faults.ErrInjected, faults.ErrPressure}},
		{"ack-drop-reset", faults.Profile{Seed: 1, AckDrop: 1}, nil, reset,
			[]error{faults.ErrInjected, faults.ErrAckDropped}},
		{"ack-drop-install", faults.Profile{Seed: 1, AckDrop: 1}, nil, install,
			[]error{faults.ErrInjected, faults.ErrAckDropped}},
		{"ack-drop-populate", faults.Profile{Seed: 1, AckDrop: 1}, nil, populate,
			[]error{faults.ErrInjected, faults.ErrAckDropped}},
		{"ack-drop-populate-delta", faults.Profile{Seed: 1, AckDrop: 1}, nil, populateDelta,
			[]error{faults.ErrInjected, faults.ErrAckDropped}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drv, in, _, _ := newWrapped(t, tc.prof)
			if tc.setup != nil {
				tc.setup(in)
			}
			err := tc.op(drv)
			if err == nil {
				t.Fatal("no error injected")
			}
			for _, want := range tc.want {
				if !errors.Is(err, want) {
					t.Errorf("errors.Is(%v, %v) = false", err, want)
				}
			}
		})
	}

	// Row-level faults carry the same sentinel through the table hook.
	in := faults.MustNew(faults.Profile{Seed: 5, RowFailure: 1})
	tb := tcam.MustNew("t", 0, 8)
	in.AttachTable(tb)
	if _, err := tb.ApplyRowsAtomic([]tcam.Row{tcam.RowFromPrefix(root, uint64(1))}); !errors.Is(err, faults.ErrInjected) {
		t.Errorf("row fault: errors.Is(%v, ErrInjected) = false", err)
	}
}

// TestAckDroppedWritesLand asserts the dropped-ack semantics: the caller
// sees an error but the hardware state moved — the divergence the forced
// post-degraded audit exists to catch.
func TestAckDroppedWritesLand(t *testing.T) {
	drv, _, mon, engine := newWrapped(t, faults.Profile{Seed: 3, AckDrop: 1})
	root, _ := bitstr.Root(8)

	if _, err := drv.InstallMonitoring([]bitstr.Prefix{root}); !errors.Is(err, faults.ErrAckDropped) {
		t.Fatalf("install: %v, want ErrAckDropped", err)
	}
	if mon.NumBins() != 1 {
		t.Errorf("install did not land: %d bins, want 1", mon.NumBins())
	}

	tr, _ := trie.NewInitial(4, 8)
	if _, _, err := drv.PopulateCalc(tr, 16); !errors.Is(err, faults.ErrAckDropped) {
		t.Fatalf("populate: %v, want ErrAckDropped", err)
	}
	if engine.Store().Len() == 0 {
		t.Error("populate did not land: empty calculation table")
	}

	mon.Observe(3)
	if _, err := drv.ResetRegisters(); !errors.Is(err, faults.ErrAckDropped) {
		t.Fatalf("reset: %v, want ErrAckDropped", err)
	}
	snap := mon.SnapshotInto(nil)
	for i, v := range snap {
		if v != 0 {
			t.Errorf("register %d = %d after dropped-ack reset, want 0", i, v)
		}
	}
}

// TestTamperStoreSilentRowFaults rolls all three silent row faults on a
// table and checks they bypass the version counter while moving the
// physical contents.
func TestTamperStoreSilentRowFaults(t *testing.T) {
	in := faults.MustNew(faults.Profile{Seed: 9, Corrupt: 1, Ghost: 1, DropRow: 1})
	tb := tcam.MustNew("t", 8, 4)
	for _, s := range []string{"00xx", "01xx", "1xxx"} {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.InsertPrefix(p, 0, p.Value()+100); err != nil {
			t.Fatal(err)
		}
	}
	v := tb.Version()
	fp := tb.Fingerprint()

	rep, err := in.TamperStore(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupted != 1 || rep.Ghosts != 1 || rep.Dropped != 1 {
		t.Errorf("tamper report = %+v, want 1/1/1", rep)
	}
	st := in.Stats()
	if st.TamperedRows != 1 || st.GhostRows != 1 || st.DroppedRows != 1 {
		t.Errorf("stats = tampered %d ghosts %d dropped %d, want 1/1/1",
			st.TamperedRows, st.GhostRows, st.DroppedRows)
	}
	if tb.Version() != v {
		t.Errorf("silent tampering bumped Version %d → %d", v, tb.Version())
	}
	afp, err := tb.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp == fp {
		t.Error("tampering left the hardware fingerprint unchanged")
	}

	// Disarmed injectors tamper nothing.
	in.SetArmed(false)
	rep, err = in.TamperStore(tb)
	if err != nil || rep != (faults.TamperReport{}) {
		t.Errorf("disarmed TamperStore = %+v, %v; want zero", rep, err)
	}
}

// fakeAuditTarget scripts the target-side audit result.
type fakeAuditTarget struct{ rep controlplane.AuditReport }

func (f *fakeAuditTarget) Populate(tr *trie.Trie, budget int) (int, int, error) { return 0, 0, nil }
func (f *fakeAuditTarget) AuditCalc(repair bool) (controlplane.AuditReport, error) {
	return f.rep, nil
}

// TestAuditStaleHidesMismatch: a stale audit read-back lies all-clean and
// counts in stats; a fresh one forwards the target's verdict.
func TestAuditStaleHidesMismatch(t *testing.T) {
	target := &fakeAuditTarget{rep: controlplane.AuditReport{Audited: 4, Corrupted: 2}}
	mon, err := monitor.New("mon", 8, 0)
	if err != nil {
		t.Fatal(err)
	}

	inStale := faults.MustNew(faults.Profile{Seed: 1, AuditStale: 1})
	aud, ok := inStale.Wrap(controlplane.NewDirectDriver(mon, target)).(controlplane.Auditor)
	if !ok {
		t.Fatal("wrapped driver does not implement Auditor")
	}
	rep, err := aud.AuditCalc(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Audited != 0 {
		t.Errorf("stale audit = %+v, want all-clean zero report", rep)
	}
	if inStale.Stats().StaleAudits != 1 {
		t.Errorf("stale audits = %d, want 1", inStale.Stats().StaleAudits)
	}

	inFresh := faults.MustNew(faults.Profile{Seed: 1})
	aud = inFresh.Wrap(controlplane.NewDirectDriver(mon, target)).(controlplane.Auditor)
	rep, err = aud.AuditCalc(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep != target.rep {
		t.Errorf("fresh audit = %+v, want forwarded %+v", rep, target.rep)
	}
}

// TestCrashHook: the hook rolls CrashProb per crash point, seeded, and is
// silenced by disarming.
func TestCrashHook(t *testing.T) {
	in := faults.MustNew(faults.Profile{Seed: 1, CrashProb: 1})
	hook := in.CrashHook()
	if !hook(controlplane.CrashAfterIntent) {
		t.Fatal("CrashProb=1 hook did not fire")
	}
	if in.Stats().Crashes != 1 {
		t.Errorf("crashes = %d, want 1", in.Stats().Crashes)
	}
	in.SetArmed(false)
	if hook(controlplane.CrashAfterCommit) {
		t.Error("disarmed hook fired")
	}

	quiet := faults.MustNew(faults.Profile{Seed: 1})
	if quiet.CrashHook()(controlplane.CrashAfterIntent) {
		t.Error("CrashProb=0 hook fired")
	}
}

// TestSetArmedSilencesVisibleFaults: disarming bypasses every fault roll,
// including an in-progress outage, and re-arming restores injection.
func TestSetArmedSilencesVisibleFaults(t *testing.T) {
	drv, in, _, _ := newWrapped(t, faults.Profile{Seed: 2, WriteFailure: 1})
	root, _ := bitstr.Root(8)

	in.StartOutage(100)
	in.SetArmed(false)
	if in.Armed() {
		t.Fatal("Armed() = true after SetArmed(false)")
	}
	if _, err := drv.InstallMonitoring([]bitstr.Prefix{root}); err != nil {
		t.Fatalf("disarmed driver failed: %v", err)
	}
	in.SetArmed(true)
	if _, err := drv.InstallMonitoring([]bitstr.Prefix{root}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("re-armed driver: %v, want injected failure", err)
	}
}

// TestParseProfileSilentKeys round-trips the silent-fault profile keys.
func TestParseProfileSilentKeys(t *testing.T) {
	p, err := faults.ParseProfile("seed=3,ackdrop=0.1,auditstale=0.2,crash=0.01,corrupt=0.05,ghost=0.04,droprow=0.03")
	if err != nil {
		t.Fatal(err)
	}
	if p.AckDrop != 0.1 || p.AuditStale != 0.2 || p.CrashProb != 0.01 ||
		p.Corrupt != 0.05 || p.Ghost != 0.04 || p.DropRow != 0.03 {
		t.Errorf("parsed profile = %+v", p)
	}
	rt, err := faults.ParseProfile(p.String())
	if err != nil {
		t.Fatalf("String() round-trip: %v", err)
	}
	if rt != p {
		t.Errorf("round-trip = %+v, want %+v", rt, p)
	}
	if _, err := faults.ParseProfile("crash=1.5"); err == nil {
		t.Error("crash probability 1.5 accepted")
	}
}
