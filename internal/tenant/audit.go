package tenant

import (
	"fmt"
	"sort"

	"github.com/ada-repro/ada/internal/tcam"
)

// Audit seam: a slice reads back and repairs only its own priority band of
// the shared table. Scoping is structural — the physical scan keeps a row
// only when its fully-specified tenant-ID field names this slice AND its
// priority sits inside the slice's band — so an audit can never observe,
// let alone rewrite, another tenant's rows, no matter how corrupted the
// shared table is.

var _ tcam.Tamperer = (*Slice)(nil)

// bandRowLocked translates a physical read-back row to the tenant-local
// view if it belongs to this slice's band; p.mu must be held.
func (s *Slice) bandRowLocked(d tcam.RowDigest) (tcam.RowDigest, bool) {
	tidMask := uint64(1)<<s.p.cfg.TenantIDBits - 1
	if len(d.Fields) == 0 || d.Fields[0].Mask != tidMask || d.Fields[0].Value != s.id {
		return tcam.RowDigest{}, false
	}
	if d.Priority < s.bandLo || d.Priority >= s.bandLo+s.p.cfg.BandSize {
		return tcam.RowDigest{}, false
	}
	fields := make([]tcam.Field, len(s.widths))
	copy(fields, d.Fields[1:1+len(s.widths)])
	prio := d.Priority - s.bandLo
	return tcam.RowDigest{
		Key:      tcam.RowKey(fields, prio),
		Fields:   fields,
		Priority: prio,
		Data:     d.Data,
	}, true
}

// readBandLocked reads back this slice's physical band in the tenant-local
// layout; p.mu must be held.
func (s *Slice) readBandLocked() ([]tcam.RowDigest, error) {
	phys, err := s.p.phys.ReadRows()
	if err != nil {
		return nil, err
	}
	out := make([]tcam.RowDigest, 0, len(s.installed))
	for _, d := range phys {
		if local, ok := s.bandRowLocked(d); ok {
			out = append(out, local)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ReadRows reads back the physically installed rows of this slice's band
// only, translated to the tenant-local layout and sorted by match key.
// Ghost rows and corrupted payloads inside the band are visible; rows of
// every other tenant are structurally out of reach.
func (s *Slice) ReadRows() ([]tcam.RowDigest, error) {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return s.readBandLocked()
}

// AuditFingerprint digests the band read-back in Fingerprint format; it
// diverges from Fingerprint after silent in-band corruption and is blind to
// all other tenants by construction.
func (s *Slice) AuditFingerprint() (string, error) {
	rows, err := s.ReadRows()
	if err != nil {
		return "", err
	}
	return tcam.DigestFingerprint(rows), nil
}

// AuditRepair reconciles this slice's band toward the expected tenant-local
// population with minimal writes, all-or-nothing. Unlike ApplyRowsAtomic it
// first resynchronises the shadow map from the physical band read-back, so
// ghost rows are deleted and silently dropped rows reinstalled; the write
// set never leaves the band.
func (s *Slice) AuditRepair(expect []tcam.Row) (int, error) {
	for _, r := range expect {
		if err := s.validateLocal(r.Fields); err != nil {
			return 0, err
		}
	}
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	if len(expect) > s.quota {
		return 0, &tcam.CapacityError{Table: s.Name(), Capacity: s.quota, Installed: len(s.installed), Requested: len(expect)}
	}
	// Resync the shadow from hardware truth: the diff below must be against
	// what is physically installed, not what we believe we installed.
	band, err := s.readBandLocked()
	if err != nil {
		return 0, err
	}
	actual := make(map[string]sliceRow, len(band))
	for _, d := range band {
		actual[d.Key] = sliceRow{fields: d.Fields, priority: d.Priority, data: d.Data}
	}
	next := make(map[string]sliceRow, len(expect))
	physUp := make([]tcam.Row, 0, len(expect))
	for _, r := range expect {
		k := tcam.RowKey(r.Fields, r.Priority)
		if _, dup := next[k]; dup {
			return 0, fmt.Errorf("tenant: %s: duplicate match key %s", s.Name(), k)
		}
		next[k] = sliceRow{fields: r.Fields, priority: r.Priority, data: r.Data}
		pr, err := s.physRow(r.Fields, r.Priority, r.Data)
		if err != nil {
			return 0, err
		}
		physUp = append(physUp, pr)
	}
	var staleKeys []string
	for k := range actual {
		if _, keep := next[k]; !keep {
			staleKeys = append(staleKeys, k)
		}
	}
	sort.Strings(staleKeys)
	physDel := make([]tcam.Row, 0, len(staleKeys))
	for _, k := range staleKeys {
		old := actual[k]
		pr, err := s.physRow(old.fields, old.priority, nil)
		if err != nil {
			return 0, err
		}
		physDel = append(physDel, pr)
	}
	writes, err := s.commitLocked(physUp, physDel)
	if err != nil {
		return 0, err
	}
	s.installed = next
	return writes, nil
}

// TamperData silently corrupts an in-band row's payload in the shared
// table; the slice's shadow and Version stay untouched.
func (s *Slice) TamperData(fields []tcam.Field, priority int, data any) error {
	pr, err := s.tamperRow(fields, priority)
	if err != nil {
		return err
	}
	return s.p.phys.TamperData(pr.Fields, pr.Priority, data)
}

// TamperInsert silently installs a ghost row inside this slice's band.
func (s *Slice) TamperInsert(fields []tcam.Field, priority int, data any) error {
	pr, err := s.tamperRow(fields, priority)
	if err != nil {
		return err
	}
	return s.p.phys.TamperInsert(pr.Fields, pr.Priority, data)
}

// TamperDelete silently drops an in-band row from the shared table.
func (s *Slice) TamperDelete(fields []tcam.Field, priority int) error {
	pr, err := s.tamperRow(fields, priority)
	if err != nil {
		return err
	}
	return s.p.phys.TamperDelete(pr.Fields, pr.Priority)
}

// tamperRow validates and translates a tenant-local tamper target to the
// physical layout; band bounds are enforced by physRow, so injected faults
// cannot escape the slice either.
func (s *Slice) tamperRow(fields []tcam.Field, priority int) (tcam.Row, error) {
	if err := s.validateLocal(fields); err != nil {
		return tcam.Row{}, err
	}
	return s.physRow(fields, priority, nil)
}
