package tenant

import (
	"testing"

	"github.com/ada-repro/ada/internal/tcam"
)

// sliceParity resolves one tenant-local batch through the cache and directly
// through the slice and requires bit-identical ordinals and values.
func sliceParity(t *testing.T, c *tcam.LookupCache, s *Slice, keys []uint64) {
	t.Helper()
	got, gpay := c.LookupIndexBatch(keys, nil)
	want, wpay := s.LookupIndexBatch(keys, nil)
	for i := range want {
		gv, gok := gpay.Value(got[i])
		wv, wok := wpay.Value(want[i])
		if got[i] != want[i] || gv != wv || gok != wok {
			t.Fatalf("key %#x: cached (ord %d, val %d/%v) vs uncached (ord %d, val %d/%v)",
				keys[i], got[i], gv, gok, want[i], wv, wok)
		}
	}
}

// TestLookupCacheTenantChurn covers the multi-tenant invalidation cases: a
// cache over one tenant's slice must survive — and stay exact across — that
// tenant's own commits, a neighbour tenant's commits, and the neighbour
// being closed (its rows bulk-deleted from the shared physical table, which
// shifts every surviving ordinal).
func TestLookupCacheTenantChurn(t *testing.T) {
	p := mustPartition(t, 64, 8, 8)
	a, err := p.Open("a", []int{8}, 16)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	b, err := p.Open("b", []int{8}, 16)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	if _, err := a.ApplyRowsAtomic([]tcam.Row{row(3, uint64(30)), row(7, uint64(70))}); err != nil {
		t.Fatalf("a commit: %v", err)
	}
	if _, err := b.ApplyRowsAtomic([]tcam.Row{row(3, uint64(999)), row(9, uint64(90))}); err != nil {
		t.Fatalf("b commit: %v", err)
	}

	c := tcam.NewLookupCache(a, 64)
	if !c.Enabled() {
		t.Fatal("cache disabled over a tenant slice")
	}
	keys := []uint64{3, 7, 9, 3, 7}
	sliceParity(t, c, a, keys) // warm
	sliceParity(t, c, a, keys) // all-hit pass
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("warm repeat produced no hits: %+v", st)
	}

	// A neighbour's commit mutates the shared physical table; the cache
	// keyed on the physical snapshot must re-base, and tenant a's results
	// must be untouched by tenant b's rows (isolation through the cache).
	if _, err := b.ApplyRowsAtomic([]tcam.Row{row(3, uint64(888)), row(7, uint64(777))}); err != nil {
		t.Fatalf("b recommit: %v", err)
	}
	sliceParity(t, c, a, keys)
	ords, pay := c.LookupIndexBatch([]uint64{3}, nil)
	if v, ok := pay.Value(ords[0]); !ok || v != 30 {
		t.Fatalf("tenant a key 3 through cache = %d/%v, want 30", v, ok)
	}

	// Closing tenant b deletes its band from the physical table, shifting
	// the ordinals of every surviving entry. Stale cached ordinals here
	// would resolve to the wrong payloads; the snapshot token forbids it.
	if _, err := p.Close("b"); err != nil {
		t.Fatalf("Close b: %v", err)
	}
	sliceParity(t, c, a, keys)
	ords, pay = c.LookupIndexBatch([]uint64{7}, nil)
	if v, ok := pay.Value(ords[0]); !ok || v != 70 {
		t.Fatalf("tenant a key 7 after neighbour close = %d/%v, want 70", v, ok)
	}
}
