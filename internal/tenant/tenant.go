// Package tenant carves one physical calculation TCAM into per-operation
// slices so several ADA systems (QCN, RCP, rate limiting, heavy-hitter
// squares, …) share a single table — the deployment shape of a real PISA
// pipeline, where stage memory is one pool, not one TCAM per operation.
//
// A Partition owns the physical table and hands out Slices. Isolation is
// structural, not cooperative:
//
//   - every slice's rows carry a fully-specified tenant-ID field (the first
//     physical match field), so a tenant's lookups can only ever resolve to
//     its own rows;
//   - every slice installs its rows inside a private, disjoint priority band,
//     so no two slices ever overlap in priority space;
//   - every slice commit is checked against the slice's quota, and quota
//     changes follow a shrink-before-grow ledger: a beneficiary is granted
//     room only out of measured free headroom (capacity − Σ max(used, quota)),
//     so the physical table can never be driven past its capacity even while
//     a victim still occupies the entries it has been asked to give back.
//
// A Slice implements tcam.Store, so the arithmetic engines and the control
// plane run on it unchanged; relative to a private table of the same budget
// the committed population, write counts, and fingerprints are identical
// (the differential tests in this package and internal/core prove it).
// The Arbiter (arbiter.go) moves quota between slices toward whichever
// operation's marginal error is highest.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrConfig reports an invalid partition or slice configuration.
	ErrConfig = errors.New("tenant: invalid configuration")
	// ErrQuota reports a quota change the ledger cannot grant.
	ErrQuota = errors.New("tenant: quota exceeds free headroom")
	// ErrTenant reports an unknown or duplicate tenant name.
	ErrTenant = errors.New("tenant: unknown or duplicate tenant")
	// ErrClosed reports a commit against a slice whose tenant has been
	// closed (e.g. migrated to another switch by the fabric arbiter).
	ErrClosed = errors.New("tenant: slice closed")
)

// Config sizes a partition's physical table.
type Config struct {
	// Name is the physical table name; slices are named Name/tenant.
	Name string
	// TotalEntries is the physical capacity shared by all slices; > 0.
	TotalEntries int
	// TenantIDBits is the width of the tenant-ID discriminator field
	// (first physical match field). Default 8 (255 tenants).
	TenantIDBits int
	// OperandWidths are the physical operand field widths. A slice may use
	// a prefix of these fields at narrower widths; unused fields are
	// wildcarded. Default [16, 16].
	OperandWidths []int
	// BandSize is the priority span reserved per slice; tenant-local
	// priorities must stay below it. Default 1<<20.
	BandSize int
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "ada.shared.calc"
	}
	if c.TenantIDBits == 0 {
		c.TenantIDBits = 8
	}
	if len(c.OperandWidths) == 0 {
		c.OperandWidths = []int{16, 16}
	}
	if c.BandSize == 0 {
		c.BandSize = 1 << 20
	}
	return c
}

// Partition carves one physical tcam.Table into tenant slices.
type Partition struct {
	mu   sync.Mutex
	cfg  Config
	phys *tcam.Table

	slices []*Slice
	byName map[string]*Slice
	// nextID hands out tenant-ID field values; IDs of closed tenants are
	// never reused, so a stale engine can never resolve a successor's rows.
	nextID uint64

	// committing is the slice whose commit currently holds mu; the
	// physical write hook dispatches per-row faults to it. All physical
	// mutations go through slice commits, so it is only read under mu.
	committing *Slice
	// hook is the partition-global write hook (chaos soaks attach here).
	hook tcam.WriteHook
}

// NewPartition allocates the physical table: one fully-specified tenant-ID
// field followed by the operand fields.
func NewPartition(cfg Config) (*Partition, error) {
	cfg = cfg.withDefaults()
	if cfg.TotalEntries <= 0 {
		return nil, fmt.Errorf("%w: TotalEntries %d", ErrConfig, cfg.TotalEntries)
	}
	if cfg.TenantIDBits < 1 || cfg.TenantIDBits > 32 {
		return nil, fmt.Errorf("%w: TenantIDBits %d", ErrConfig, cfg.TenantIDBits)
	}
	if cfg.BandSize < 1 {
		return nil, fmt.Errorf("%w: BandSize %d", ErrConfig, cfg.BandSize)
	}
	widths := append([]int{cfg.TenantIDBits}, cfg.OperandWidths...)
	phys, err := tcam.New(cfg.Name, cfg.TotalEntries, widths...)
	if err != nil {
		return nil, err
	}
	p := &Partition{cfg: cfg, phys: phys, byName: make(map[string]*Slice)}
	phys.SetWriteHook(p.dispatch)
	return p, nil
}

// Table exposes the physical table for resource accounting and layout; all
// mutations must go through slices.
func (p *Partition) Table() *tcam.Table { return p.phys }

// SetWriteHook installs a partition-global per-row hook, consulted before
// the committing slice's own hook. Used by chaos soaks that fault the shared
// table as a whole.
func (p *Partition) SetWriteHook(h tcam.WriteHook) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hook = h
}

// dispatch runs with the physical table lock held, inside a slice commit
// that holds p.mu.
func (p *Partition) dispatch(op tcam.WriteOp) error {
	if p.hook != nil {
		if err := p.hook(op); err != nil {
			return err
		}
	}
	if s := p.committing; s != nil && s.hook != nil {
		return s.hook(op)
	}
	return nil
}

// Open admits a tenant: widths are its operand field widths (a prefix of the
// physical operand fields, each no wider), quota its initial entry budget.
// The slice receives the next tenant ID and the priority band
// [id·BandSize, (id+1)·BandSize).
func (p *Partition) Open(name string, widths []int, quota int) (*Slice, error) {
	if name == "" || strings.ContainsAny(name, "/\n") {
		return nil, fmt.Errorf("%w: tenant name %q", ErrConfig, name)
	}
	if len(widths) == 0 || len(widths) > len(p.cfg.OperandWidths) {
		return nil, fmt.Errorf("%w: %d operand fields, physical table has %d", ErrConfig, len(widths), len(p.cfg.OperandWidths))
	}
	for i, w := range widths {
		if w < 1 || w > p.cfg.OperandWidths[i] {
			return nil, fmt.Errorf("%w: field %d width %d exceeds physical %d", ErrConfig, i, w, p.cfg.OperandWidths[i])
		}
	}
	if quota < 0 {
		return nil, fmt.Errorf("%w: quota %d", ErrConfig, quota)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byName[name]; ok {
		return nil, fmt.Errorf("%w: %q already open", ErrTenant, name)
	}
	id := p.nextID + 1
	if id >= 1<<p.cfg.TenantIDBits {
		return nil, fmt.Errorf("%w: tenant-ID space exhausted (%d bits)", ErrConfig, p.cfg.TenantIDBits)
	}
	if quota > p.headroomLocked() {
		return nil, fmt.Errorf("%w: quota %d, headroom %d", ErrQuota, quota, p.headroomLocked())
	}
	s := &Slice{
		p:         p,
		name:      name,
		id:        id,
		bandLo:    int(id) * p.cfg.BandSize,
		widths:    append([]int(nil), widths...),
		quota:     quota,
		installed: make(map[string]sliceRow),
	}
	p.nextID = id
	p.slices = append(p.slices, s)
	p.byName[name] = s
	return s, nil
}

// Close evicts a tenant: every physical row the slice holds is deleted in
// one transactional commit, the slice is marked closed (further commits fail
// with ErrClosed; lookups simply miss), and its reservation leaves the
// ledger, freeing headroom immediately. The delete goes through the same
// write-hook seam as any commit, so injected row faults can make a Close
// fail — in which case the slice stays open and installed, untouched.
// Returns the physical row deletes performed.
func (p *Partition) Close(name string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrTenant, name)
	}
	var keys []string
	for k := range s.installed {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic physical delete sequence
	physDel := make([]tcam.Row, 0, len(keys))
	for _, k := range keys {
		old := s.installed[k]
		pr, err := s.physRow(old.fields, old.priority, nil)
		if err != nil {
			return 0, err
		}
		physDel = append(physDel, pr)
	}
	writes, err := s.commitLocked(nil, physDel)
	if err != nil {
		return 0, err
	}
	s.installed = make(map[string]sliceRow)
	s.quota = 0
	s.closed = true
	delete(p.byName, name)
	for i, sl := range p.slices {
		if sl == s {
			p.slices = append(p.slices[:i], p.slices[i+1:]...)
			break
		}
	}
	return writes, nil
}

// headroomLocked is the free capacity the ledger may still grant: physical
// capacity minus every slice's effective reservation max(used, quota). Using
// the max means a slice asked to shrink keeps its old entries reserved until
// it actually commits the smaller population — shrink-before-grow.
func (p *Partition) headroomLocked() int {
	free := p.cfg.TotalEntries
	for _, s := range p.slices {
		r := len(s.installed)
		if s.quota > r {
			r = s.quota
		}
		free -= r
	}
	if free < 0 {
		free = 0
	}
	return free
}

// Headroom reports the free capacity available for quota grants.
func (p *Partition) Headroom() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.headroomLocked()
}

// SetQuota changes a tenant's entry budget. Decreases always succeed (the
// ledger keeps the old entries reserved until the tenant commits within the
// new quota); increases succeed only within the free headroom, so the grant
// can never oversubscribe the physical table.
func (p *Partition) SetQuota(name string, quota int) error {
	if quota < 0 {
		return fmt.Errorf("%w: quota %d", ErrConfig, quota)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTenant, name)
	}
	if quota > s.quota {
		grow := quota - s.quota
		if free := p.headroomLocked(); grow > free {
			return fmt.Errorf("%w: +%d requested, %d free", ErrQuota, grow, free)
		}
	}
	s.quota = quota
	return nil
}

// Slices returns the open slices in admission order.
func (p *Partition) Slices() []*Slice {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Slice(nil), p.slices...)
}

// Slice returns the named tenant's slice.
func (p *Partition) Slice(name string) (*Slice, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byName[name]
	return s, ok
}

// Validate checks the partition invariants against the physical table:
// occupancy within capacity, the ledger within capacity, every physical row
// owned by exactly one slice (fully-specified tenant-ID field), priorities
// inside the owner's band, and each slice's shadow map in exact agreement
// with the physical rows. The differential tests call it every round.
func (p *Partition) Validate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.phys.Len(); n > p.cfg.TotalEntries {
		return fmt.Errorf("tenant: physical table %q holds %d entries, capacity %d", p.cfg.Name, n, p.cfg.TotalEntries)
	}
	reserved := 0
	for _, s := range p.slices {
		r := len(s.installed)
		if s.quota > r {
			r = s.quota
		}
		reserved += r
	}
	if reserved > p.cfg.TotalEntries {
		return fmt.Errorf("tenant: ledger reserves %d entries, capacity %d", reserved, p.cfg.TotalEntries)
	}
	tidMask := uint64(1)<<p.cfg.TenantIDBits - 1
	byID := make(map[uint64]*Slice, len(p.slices))
	for _, s := range p.slices {
		byID[s.id] = s
	}
	seen := make(map[uint64]map[string]bool, len(p.slices))
	for _, e := range p.phys.Entries() {
		tid := e.Fields[0]
		if tid.Mask != tidMask {
			return fmt.Errorf("tenant: entry %d tenant-ID field not fully specified (mask %#x)", e.ID, tid.Mask)
		}
		s, ok := byID[tid.Value]
		if !ok {
			return fmt.Errorf("tenant: entry %d carries unknown tenant ID %d", e.ID, tid.Value)
		}
		if e.Priority < s.bandLo || e.Priority >= s.bandLo+p.cfg.BandSize {
			return fmt.Errorf("tenant: entry %d priority %d outside %q band [%d, %d)",
				e.ID, e.Priority, s.name, s.bandLo, s.bandLo+p.cfg.BandSize)
		}
		local := tcam.RowKey(e.Fields[1:1+len(s.widths)], e.Priority-s.bandLo)
		row, ok := s.installed[local]
		if !ok {
			return fmt.Errorf("tenant: entry %d not in %q's shadow map (key %s)", e.ID, s.name, local)
		}
		if fmt.Sprint(row.data) != fmt.Sprint(e.Data) {
			return fmt.Errorf("tenant: entry %d data diverged from %q's shadow map", e.ID, s.name)
		}
		if seen[s.id] == nil {
			seen[s.id] = make(map[string]bool)
		}
		seen[s.id][local] = true
	}
	for _, s := range p.slices {
		if got := len(seen[s.id]); got != len(s.installed) {
			return fmt.Errorf("tenant: %q holds %d physical rows, shadow map %d", s.name, got, len(s.installed))
		}
	}
	return nil
}

// sliceRow is a tenant-local installed row (fields and priority before
// translation to the physical layout).
type sliceRow struct {
	fields   []tcam.Field
	priority int
	data     any
}

// Slice is one tenant's view of the shared table. It implements tcam.Store:
// the arithmetic engines and control plane treat it exactly like a private
// table whose capacity is the slice's current quota.
type Slice struct {
	p      *Partition
	name   string
	id     uint64
	bandLo int
	widths []int

	// quota, installed, version, closed, and hook are guarded by p.mu.
	quota     int
	installed map[string]sliceRow
	version   uint64
	closed    bool
	hook      tcam.WriteHook
}

var _ tcam.Store = (*Slice)(nil)

// Name returns partition/tenant.
func (s *Slice) Name() string { return s.p.cfg.Name + "/" + s.name }

// TenantName returns the bare tenant name used with Partition.SetQuota.
func (s *Slice) TenantName() string { return s.name }

// ID returns the slice's tenant-ID field value.
func (s *Slice) ID() uint64 { return s.id }

// Band returns the slice's priority band [lo, hi).
func (s *Slice) Band() (lo, hi int) { return s.bandLo, s.bandLo + s.p.cfg.BandSize }

// FieldWidths returns the tenant-local operand widths.
func (s *Slice) FieldWidths() []int { return append([]int(nil), s.widths...) }

// Capacity reports the current quota.
func (s *Slice) Capacity() int {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return s.quota
}

// Len reports the installed tenant-local rows.
func (s *Slice) Len() int {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return len(s.installed)
}

// Version follows the tcam package's Version contract (see the tcam package
// doc), scoped to this tenant: other tenants' commits do not advance it.
func (s *Slice) Version() uint64 {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return s.version
}

// Fingerprint digests the tenant-local rows in the same format as a private
// table, so a slice and a standalone run of the same population fingerprint
// equal.
func (s *Slice) Fingerprint() string {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	keys := make([]string, 0, len(s.installed))
	for k, r := range s.installed {
		keys = append(keys, k+"="+fmt.Sprint(r.data))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// SetWriteHook installs a per-row hook consulted for this slice's physical
// commits only — fault injection scoped to one tenant.
func (s *Slice) SetWriteHook(h tcam.WriteHook) {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	s.hook = h
}

// validateLocal mirrors the private-table field validation against the
// tenant-local widths.
func (s *Slice) validateLocal(fields []tcam.Field) error {
	if len(fields) != len(s.widths) {
		return fmt.Errorf("tenant: %s: row has %d fields, slice has %d", s.Name(), len(fields), len(s.widths))
	}
	for i, f := range fields {
		if w := s.widths[i]; w < 64 {
			max := uint64(1)<<w - 1
			if f.Value > max || f.Mask > max {
				return fmt.Errorf("tenant: %s: field %d exceeds %d bits", s.Name(), i, w)
			}
		}
	}
	return nil
}

// physRow translates a tenant-local row to the physical layout: the
// fully-specified tenant-ID field, the operand fields, wildcards for unused
// physical fields, and the priority offset into the slice's band.
func (s *Slice) physRow(fields []tcam.Field, priority int, data any) (tcam.Row, error) {
	if priority < 0 || priority >= s.p.cfg.BandSize {
		return tcam.Row{}, fmt.Errorf("tenant: %s: priority %d outside band size %d", s.Name(), priority, s.p.cfg.BandSize)
	}
	pf := make([]tcam.Field, 1+len(s.p.cfg.OperandWidths))
	pf[0] = tcam.Field{Value: s.id, Mask: uint64(1)<<s.p.cfg.TenantIDBits - 1}
	copy(pf[1:], fields)
	return tcam.Row{Fields: pf, Priority: s.bandLo + priority, Data: data}, nil
}

// physKeys translates lookup keys, padding unused physical fields with 0
// (matched by their wildcard fields).
func (s *Slice) physKeys(keys []uint64) []uint64 {
	pk := make([]uint64, 1+len(s.p.cfg.OperandWidths))
	pk[0] = s.id
	copy(pk[1:], keys)
	return pk
}

// Lookup resolves one tenant-local key tuple. The fully-specified tenant-ID
// field restricts resolution to this slice's rows; within them, LPM order is
// identical to a private table (the ID field adds a constant to every sig
// count, the band a constant to every priority).
func (s *Slice) Lookup(keys ...uint64) (*tcam.Entry, bool) {
	return s.p.phys.Lookup(s.physKeys(keys)...)
}

// LookupBatch resolves many tenant-local key tuples against one compiled
// snapshot of the shared table.
func (s *Slice) LookupBatch(keys [][]uint64) []*tcam.Entry {
	pk := make([][]uint64, len(keys))
	for i, k := range keys {
		pk[i] = s.physKeys(k)
	}
	return s.p.phys.LookupBatch(pk)
}

// LookupSingleBatch is the single-operand batch path. The shared table has
// more than one field, so it expands to the generic batch lookup.
func (s *Slice) LookupSingleBatch(keys []uint64, dst []*tcam.Entry) []*tcam.Entry {
	pk := make([][]uint64, len(keys))
	buf := make([]uint64, len(keys)*(1+len(s.p.cfg.OperandWidths)))
	stride := 1 + len(s.p.cfg.OperandWidths)
	for i, k := range keys {
		row := buf[i*stride : i*stride+stride : i*stride+stride]
		row[0] = s.id
		row[1] = k
		pk[i] = row
	}
	out := s.p.phys.LookupBatch(pk)
	if cap(dst) >= len(out) {
		dst = dst[:len(out)]
		copy(dst, out)
		return dst
	}
	return out
}

// physFlatPool recycles the translated key buffers LookupIndexBatch packs,
// so a tenant-mounted engine's steady-state batches stay allocation-free.
var physFlatPool = sync.Pool{New: func() any { return new([]uint64) }}

// LookupIndexBatch translates the tenant-local packed tuples to the physical
// layout (tenant-ID first, unused operand fields zeroed against their
// wildcards) and resolves them against one compiled snapshot of the shared
// table. The returned ordinals and payloads are the physical table's; within
// this slice's rows resolution is identical to a private table's.
func (s *Slice) LookupIndexBatch(flat []uint64, dst []int32) ([]int32, tcam.Payloads) {
	arity := len(s.widths)
	n := len(flat) / arity
	stride := 1 + len(s.p.cfg.OperandWidths)
	bufp := physFlatPool.Get().(*[]uint64)
	pk := *bufp
	if cap(pk) >= n*stride {
		pk = pk[:n*stride]
	} else {
		pk = make([]uint64, n*stride)
	}
	for i := 0; i < n; i++ {
		row := pk[i*stride : (i+1)*stride]
		row[0] = s.id
		copy(row[1:1+arity], flat[i*arity:(i+1)*arity])
		for j := 1 + arity; j < stride; j++ {
			row[j] = 0
		}
	}
	ords, pay := s.p.phys.LookupIndexBatch(pk, dst)
	*bufp = pk
	physFlatPool.Put(bufp)
	return ords, pay
}

// LookupSnapshot implements tcam.Snapshotter by delegating to the shared
// physical table: the ordinals a slice lookup returns are physical-table
// ordinals, so the physical snapshot generation is the correct validity
// token. Any tenant's commit (or an Unmount tearing a neighbour's rows out)
// advances it, which is conservative for the other tenants' caches but
// never stale.
func (s *Slice) LookupSnapshot() (tcam.Payloads, uint64) {
	return s.p.phys.LookupSnapshot()
}

var _ tcam.Snapshotter = (*Slice)(nil)

// ApplyRowsAtomic reconciles the slice toward rows, all-or-nothing, with the
// same write accounting as a private table: unchanged rows cost nothing,
// changed data one update, new rows one insert, stale rows one delete. Rows
// must have distinct match keys (every population builder guarantees this).
func (s *Slice) ApplyRowsAtomic(rows []tcam.Row) (int, error) {
	for _, r := range rows {
		if err := s.validateLocal(r.Fields); err != nil {
			return 0, err
		}
	}
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("%w: %s", ErrClosed, s.Name())
	}
	if len(rows) > s.quota {
		return 0, &tcam.CapacityError{Table: s.Name(), Capacity: s.quota, Installed: len(s.installed), Requested: len(rows)}
	}
	next := make(map[string]sliceRow, len(rows))
	physUp := make([]tcam.Row, 0, len(rows))
	for _, r := range rows {
		k := tcam.RowKey(r.Fields, r.Priority)
		if _, dup := next[k]; dup {
			return 0, fmt.Errorf("tenant: %s: duplicate match key %s", s.Name(), k)
		}
		next[k] = sliceRow{fields: r.Fields, priority: r.Priority, data: r.Data}
		pr, err := s.physRow(r.Fields, r.Priority, r.Data)
		if err != nil {
			return 0, err
		}
		physUp = append(physUp, pr)
	}
	// Stale rows, in sorted key order for a deterministic physical delete
	// sequence.
	var staleKeys []string
	for k := range s.installed {
		if _, keep := next[k]; !keep {
			staleKeys = append(staleKeys, k)
		}
	}
	sort.Strings(staleKeys)
	physDel := make([]tcam.Row, 0, len(staleKeys))
	for _, k := range staleKeys {
		old := s.installed[k]
		pr, err := s.physRow(old.fields, old.priority, nil)
		if err != nil {
			return 0, err
		}
		physDel = append(physDel, pr)
	}
	writes, err := s.commitLocked(physUp, physDel)
	if err != nil {
		return 0, err
	}
	s.installed = next
	return writes, nil
}

// ApplyDelta applies an incremental reconciliation transactionally, exactly
// like tcam.Table.ApplyDelta scoped to this slice; a delete of a key that is
// not installed fails with tcam.ErrDeltaConflict before touching the table.
func (s *Slice) ApplyDelta(upserts, deletes []tcam.Row) (int, error) {
	for _, r := range upserts {
		if err := s.validateLocal(r.Fields); err != nil {
			return 0, err
		}
	}
	for _, r := range deletes {
		if err := s.validateLocal(r.Fields); err != nil {
			return 0, err
		}
	}
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("%w: %s", ErrClosed, s.Name())
	}
	removed := make(map[string]bool, len(deletes))
	physDel := make([]tcam.Row, 0, len(deletes))
	for _, r := range deletes {
		k := tcam.RowKey(r.Fields, r.Priority)
		old, ok := s.installed[k]
		if !ok || removed[k] {
			return 0, fmt.Errorf("%w: delete of %q not installed in slice %s", tcam.ErrDeltaConflict, k, s.Name())
		}
		removed[k] = true
		pr, err := s.physRow(old.fields, old.priority, nil)
		if err != nil {
			return 0, err
		}
		physDel = append(physDel, pr)
	}
	n := len(s.installed) - len(physDel)
	physUp := make([]tcam.Row, 0, len(upserts))
	upKeys := make([]string, 0, len(upserts))
	for _, r := range upserts {
		k := tcam.RowKey(r.Fields, r.Priority)
		if _, ok := s.installed[k]; !ok || removed[k] {
			n++
			if n > s.quota {
				return 0, &tcam.CapacityError{Table: s.Name(), Capacity: s.quota, Installed: len(s.installed) - len(physDel), Requested: 1}
			}
		}
		pr, err := s.physRow(r.Fields, r.Priority, r.Data)
		if err != nil {
			return 0, err
		}
		physUp = append(physUp, pr)
		upKeys = append(upKeys, k)
	}
	writes, err := s.commitLocked(physUp, physDel)
	if err != nil {
		return 0, err
	}
	for k := range removed {
		delete(s.installed, k)
	}
	for i, r := range upserts {
		s.installed[upKeys[i]] = sliceRow{fields: r.Fields, priority: r.Priority, data: r.Data}
	}
	return writes, nil
}

// commitLocked forwards a translated delta to the physical table with the
// slice marked as committing (for write-hook dispatch); p.mu must be held.
// The slice version advances on every attempt, like a private table's.
func (s *Slice) commitLocked(physUp, physDel []tcam.Row) (int, error) {
	s.p.committing = s
	writes, err := s.p.phys.ApplyDelta(physUp, physDel)
	s.p.committing = nil
	s.version++
	return writes, err
}
