package tenant

import (
	"fmt"
	"sort"
)

// Signal is one tenant's error-pressure report, produced from Algorithm 3's
// per-prefix error terms (population.UnaryErrorPressure /
// BinaryErrorPressure) at the tenant's current budget.
type Signal struct {
	// Pressure is the mass-weighted residual relative error at the
	// current budget (hits × relative error).
	Pressure float64
	// Marginal is the error term of the hottest still-splittable region —
	// the gain the next granted entry would realise.
	Marginal float64
	// Hits is the observed hit mass behind the estimate.
	Hits uint64
}

// Member is a mounted tenant as the arbiter sees it: a name, a current
// budget, a budget knob, and an error-pressure oracle. core.Registry adapts
// its systems to this.
type Member interface {
	TenantName() string
	// Budget is the tenant's current entry budget (== its slice quota).
	Budget() int
	// SetBudget moves quota and control-round budget together. The
	// arbiter only grows a tenant within the partition's free headroom.
	SetBudget(n int) error
	// Pressure estimates the residual error the tenant would carry at the
	// given hypothetical entry budget, without changing any tenant state.
	// The arbiter probes several budgets per rebalance to read the
	// marginal-gain gradient, so repeated calls must be cheap and
	// side-effect free.
	Pressure(budget int) (Signal, error)
}

// ArbiterConfig tunes the reallocation policy.
type ArbiterConfig struct {
	// Every is the rebalance cadence in rounds; <= 0 disables
	// reallocation (the static-split baseline).
	Every int
	// Floor is the minimum entries a tenant is never shrunk below.
	// Default 8.
	Floor int
	// MaxMoveFrac caps how much of the total budget one rebalance may
	// move away from (or toward) a single tenant, damping oscillation.
	// Default 0.25.
	MaxMoveFrac float64
	// MinMove suppresses reallocations smaller than this many entries
	// (hysteresis). Default 2.
	MinMove int
}

// withDefaults fills zero fields and clamps nonsense: a negative floor,
// move fraction, or hysteresis is treated the same as unset rather than
// allowed to drive allocations negative.
func (c ArbiterConfig) withDefaults() ArbiterConfig {
	if c.Floor <= 0 {
		c.Floor = 8
	}
	if c.MaxMoveFrac <= 0 {
		c.MaxMoveFrac = 0.25
	}
	if c.MinMove <= 0 {
		c.MinMove = 2
	}
	return c
}

// Move records one applied budget change.
type Move struct {
	Tenant string
	From   int
	To     int
}

// Report summarises one RoundDone call.
type Report struct {
	// Round is the arbiter's round counter.
	Round int
	// Rebalanced is true when this round recomputed the desired split.
	Rebalanced bool
	// Pressures holds the per-tenant signals at their current budgets,
	// sampled at the last rebalance (nil otherwise).
	Pressures map[string]Signal
	// Moves are the budget changes applied this round: immediate shrinks
	// plus grants settled out of freed headroom (possibly from desires
	// recorded several rounds ago).
	Moves []Move
}

// Arbiter reallocates the shared entry budget across tenants every Every
// rounds by marginal-gain waterfilling over each tenant's error-pressure
// oracle (see rebalance). Reallocation is lazy
// and two-phased: victims are shrunk immediately (their next control round
// commits the smaller population, releasing physical entries), while
// beneficiaries are only granted room out of the partition's measured free
// headroom — at this round or a later one, once the victims have actually
// committed. The physical table therefore never oversubscribes, and every
// tenant still performs exactly one populate per control round.
type Arbiter struct {
	part    *Partition
	cfg     ArbiterConfig
	round   int
	desired map[string]int
}

// NewArbiter builds an arbiter over the partition.
func NewArbiter(part *Partition, cfg ArbiterConfig) *Arbiter {
	return &Arbiter{part: part, cfg: cfg.withDefaults(), desired: make(map[string]int)}
}

// RoundDone advances the arbiter after one control round across all members:
// it settles pending grants from any freed headroom, and on the cadence
// recomputes the desired split from fresh pressure signals. Members must be
// passed in a stable order; grants settle in that order.
func (a *Arbiter) RoundDone(members []Member) (Report, error) {
	a.round++
	rep := Report{Round: a.round}
	rep.Moves = append(rep.Moves, a.settle(members)...)
	if a.cfg.Every > 0 && a.round%a.cfg.Every == 0 {
		if err := a.rebalance(members, &rep); err != nil {
			return rep, err
		}
		rep.Moves = append(rep.Moves, a.settle(members)...)
	}
	return rep, nil
}

// settle grants pending budget increases out of the free headroom, in member
// order.
func (a *Arbiter) settle(members []Member) []Move {
	var moves []Move
	for _, m := range members {
		want, ok := a.desired[m.TenantName()]
		cur := m.Budget()
		if !ok || want <= cur {
			if ok && want <= cur {
				delete(a.desired, m.TenantName())
			}
			continue
		}
		grant := want - cur
		if grant < a.cfg.MinMove {
			// The remainder of the desire is below the hysteresis band:
			// consider it satisfied rather than dribbling 1-entry grants.
			delete(a.desired, m.TenantName())
			continue
		}
		if free := a.part.Headroom(); grant > free {
			grant = free
		}
		if grant < a.cfg.MinMove {
			continue // wait for victims to free real headroom
		}
		if err := m.SetBudget(cur + grant); err != nil {
			continue // headroom raced away; retry next round
		}
		moves = append(moves, Move{Tenant: m.TenantName(), From: cur, To: cur + grant})
		if cur+grant >= want {
			delete(a.desired, m.TenantName())
		}
	}
	return moves
}

// rebalance recomputes the desired split by waterfilling: every tenant
// starts at the Floor, and the remaining budget is granted chunk by chunk to
// the tenant whose residual error would drop the most — Algorithm 3's error
// terms evaluated at hypothetical budgets, i.e. the marginal-gain gradient.
// Pricing grants by the *drop* in residual error (rather than splitting
// proportionally to absolute pressure) makes diminishing returns count: a
// tenant whose error no longer improves stops receiving, however large its
// residual, so an operation with inherently slow error decay (a binary
// tenant's side budgets grow like the square root of its joint budget)
// cannot starve everyone else. Shrinks apply immediately; grows are recorded
// as desires for settle.
func (a *Arbiter) rebalance(members []Member, rep *Report) error {
	n := len(members)
	if n == 0 {
		return nil
	}
	rep.Rebalanced = true
	rep.Pressures = make(map[string]Signal, n)
	total := 0
	for _, m := range members {
		total += m.Budget()
	}
	floor := a.cfg.Floor
	if total < floor*n {
		return nil // not enough budget to honour floors; keep the split
	}
	cache := make([]map[int]Signal, n)
	for i := range cache {
		cache[i] = make(map[int]Signal)
	}
	at := func(i, budget int) (Signal, error) {
		if budget < 1 {
			// Pressure oracles divide residual error by the budget; never
			// probe them at zero entries.
			budget = 1
		}
		if sig, ok := cache[i][budget]; ok {
			return sig, nil
		}
		sig, err := members[i].Pressure(budget)
		if err != nil {
			return Signal{}, fmt.Errorf("tenant: pressure for %q at budget %d: %w",
				members[i].TenantName(), budget, err)
		}
		cache[i][budget] = sig
		return sig, nil
	}
	for i, m := range members {
		sig, err := at(i, m.Budget())
		if err != nil {
			return err
		}
		rep.Pressures[m.TenantName()] = sig
	}
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = floor
	}
	rem := total - n*floor
	chunk := total / 16
	if chunk < 1 {
		chunk = 1
	}
	for rem > 0 {
		g := chunk
		if g > rem {
			g = rem
		}
		best, bestGain := -1, 0.0
		for i := range members {
			cur, err := at(i, alloc[i])
			if err != nil {
				return err
			}
			next, err := at(i, alloc[i]+g)
			if err != nil {
				return err
			}
			if gain := cur.Pressure - next.Pressure; gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			// Nobody improves from another chunk. Park the remainder with
			// the highest residual pressure; if everyone is exactly
			// covered, spread it evenly so no budget is silently lost.
			var bestP float64
			for i := range members {
				cur, err := at(i, alloc[i])
				if err != nil {
					return err
				}
				if best < 0 || cur.Pressure > bestP {
					best, bestP = i, cur.Pressure
				}
			}
			if bestP <= 0 {
				for i := 0; rem > 0; i = (i + 1) % n {
					alloc[i]++
					rem--
				}
				break
			}
			alloc[best] += rem
			break
		}
		alloc[best] += g
		rem -= g
	}
	desired := alloc
	// Damp: no tenant moves more than MaxMoveFrac of the total per
	// rebalance, and moves under MinMove are suppressed.
	maxMove := int(a.cfg.MaxMoveFrac * float64(total))
	if maxMove < a.cfg.MinMove {
		maxMove = a.cfg.MinMove
	}
	a.desired = make(map[string]int, len(members))
	type shrink struct {
		m  Member
		to int
	}
	var shrinks []shrink
	for i, m := range members {
		cur := m.Budget()
		want := desired[i]
		if d := want - cur; d > maxMove {
			want = cur + maxMove
		} else if d < -maxMove {
			want = cur - maxMove
		}
		if diff := want - cur; diff >= -a.cfg.MinMove && diff <= a.cfg.MinMove {
			continue
		}
		if want < cur {
			shrinks = append(shrinks, shrink{m: m, to: want})
		} else {
			a.desired[m.TenantName()] = want
		}
	}
	// Shrink victims first (sorted for determinism regardless of caller
	// order), then settle grants from whatever headroom that frees now;
	// the rest settles after the victims' next commits.
	sort.Slice(shrinks, func(i, j int) bool { return shrinks[i].m.TenantName() < shrinks[j].m.TenantName() })
	for _, sh := range shrinks {
		cur := sh.m.Budget()
		if err := sh.m.SetBudget(sh.to); err != nil {
			return fmt.Errorf("tenant: shrinking %q to %d: %w", sh.m.TenantName(), sh.to, err)
		}
		rep.Moves = append(rep.Moves, Move{Tenant: sh.m.TenantName(), From: cur, To: sh.to})
	}
	return nil
}
