package tenant

import (
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/tcam"
)

// twoSlices opens two populated slices on one partition.
func twoSlices(t *testing.T) (*Partition, *Slice, *Slice) {
	t.Helper()
	p := mustPartition(t, 16, 8, 8)
	a, err := p.Open("a", []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open("b", []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyRowsAtomic([]tcam.Row{row(1, uint64(10)), row(2, uint64(20))}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyRowsAtomic([]tcam.Row{row(1, uint64(100)), row(3, uint64(300))}); err != nil {
		t.Fatal(err)
	}
	return p, a, b
}

func TestSliceReadRowsScopedToBand(t *testing.T) {
	_, a, b := twoSlices(t)
	rowsA, err := a.ReadRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsA) != 2 {
		t.Fatalf("a.ReadRows: %d rows, want 2 (own band only)", len(rowsA))
	}
	// Digests come back in local coordinates: single operand field, local
	// priority, and the same keys the slice's shadow fingerprint uses.
	for _, d := range rowsA {
		if len(d.Fields) != 1 {
			t.Errorf("digest has %d fields, want 1 local operand", len(d.Fields))
		}
	}
	afp, err := a.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp != a.Fingerprint() {
		t.Errorf("clean slice: AuditFingerprint != Fingerprint\n%s\nvs\n%s", afp, a.Fingerprint())
	}
	bfp, _ := b.AuditFingerprint()
	if bfp == afp {
		t.Error("two different slices produced identical audit fingerprints")
	}
}

// TestSliceAuditNeverCrossesBands tampers slice A, then audits and repairs
// through slice A, asserting slice B's rows, fingerprint, and physical band
// are untouched throughout — and vice versa for B's own tamper.
func TestSliceAuditNeverCrossesBands(t *testing.T) {
	p, a, b := twoSlices(t)
	bClean, _ := b.AuditFingerprint()
	physBefore := p.Table().Len()

	// Corrupt one A row, ghost one A row, through the slice tamper seam.
	if err := a.TamperData([]tcam.Field{{Value: 1, Mask: 0xff}}, 0, uint64(999)); err != nil {
		t.Fatal(err)
	}
	if err := a.TamperInsert([]tcam.Field{{Value: 9, Mask: 0xff}}, 0, uint64(90)); err != nil {
		t.Fatal(err)
	}

	// B's read-back must not see A's corruption.
	if got, _ := b.AuditFingerprint(); got != bClean {
		t.Fatalf("tampering A changed B's audit fingerprint:\n%s\nwant\n%s", got, bClean)
	}

	// Repair A against its shadow; B stays byte-identical.
	expect := []tcam.Row{row(1, uint64(10)), row(2, uint64(20))}
	writes, err := a.AuditRepair(expect)
	if err != nil {
		t.Fatal(err)
	}
	if writes != 2 {
		t.Errorf("repair writes = %d, want 2 (one corrupted, one ghost)", writes)
	}
	if got, _ := a.AuditFingerprint(); got != a.Fingerprint() {
		t.Error("A not healed: audit and shadow fingerprints still diverge")
	}
	if e, ok := a.Lookup(1); !ok || e.Data != uint64(10) {
		t.Errorf("a.Lookup(1) = %v after repair, want 10", e)
	}
	if got, _ := b.AuditFingerprint(); got != bClean {
		t.Fatalf("repairing A changed B:\n%s\nwant\n%s", got, bClean)
	}
	if e, ok := b.Lookup(1); !ok || e.Data != uint64(100) {
		t.Errorf("b.Lookup(1) = %v after A repair, want 100", e)
	}
	if p.Table().Len() != physBefore {
		t.Errorf("physical table len %d, want %d", p.Table().Len(), physBefore)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after repair: %v", err)
	}
}

func TestSliceTamperValidation(t *testing.T) {
	_, a, _ := twoSlices(t)
	if err := a.TamperData([]tcam.Field{{Value: 7, Mask: 0xff}}, 0, uint64(1)); !errors.Is(err, tcam.ErrNotFound) {
		t.Errorf("TamperData absent row: %v, want ErrNotFound", err)
	}
	if err := a.TamperInsert([]tcam.Field{{Value: 1, Mask: 0xff}}, 0, uint64(5)); !errors.Is(err, tcam.ErrDeltaConflict) {
		t.Errorf("TamperInsert over installed: %v, want ErrDeltaConflict", err)
	}
	// Out-of-band local priority is rejected before touching hardware.
	if err := a.TamperInsert([]tcam.Field{{Value: 8, Mask: 0xff}}, 1<<20, uint64(5)); err == nil {
		t.Error("TamperInsert with out-of-band priority: want error")
	}
}

// TestSliceAuditRepairRestoresQuota verifies a repair that drops ghosts
// frees quota accounting (Len back to the shadow's row count).
func TestSliceAuditRepairRestoresQuota(t *testing.T) {
	_, a, _ := twoSlices(t)
	if err := a.TamperInsert([]tcam.Field{{Value: 9, Mask: 0xff}}, 0, uint64(90)); err != nil {
		t.Fatal(err)
	}
	expect := []tcam.Row{row(1, uint64(10)), row(2, uint64(20))}
	if _, err := a.AuditRepair(expect); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d after repair, want 2", a.Len())
	}
}
