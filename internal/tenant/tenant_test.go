package tenant

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/tcam"
)

func mustPartition(t *testing.T, total int, widths ...int) *Partition {
	t.Helper()
	cfg := Config{Name: "shared", TotalEntries: total}
	if len(widths) > 0 {
		cfg.OperandWidths = widths
	}
	p, err := NewPartition(cfg)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	return p
}

func row(v uint64, data any) tcam.Row {
	return tcam.Row{Fields: []tcam.Field{{Value: v, Mask: 0xff}}, Data: data}
}

func TestSliceIsolation(t *testing.T) {
	p := mustPartition(t, 16, 8, 8)
	a, err := p.Open("a", []int{8}, 8)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	b, err := p.Open("b", []int{8}, 8)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	if _, err := a.ApplyRowsAtomic([]tcam.Row{row(7, "from-a")}); err != nil {
		t.Fatalf("a commit: %v", err)
	}
	if _, err := b.ApplyRowsAtomic([]tcam.Row{row(7, "from-b")}); err != nil {
		t.Fatalf("b commit: %v", err)
	}
	// Same key, different tenants, different results.
	ea, ok := a.Lookup(7)
	if !ok || ea.Data != "from-a" {
		t.Fatalf("a.Lookup(7) = %v, %v", ea, ok)
	}
	eb, ok := b.Lookup(7)
	if !ok || eb.Data != "from-b" {
		t.Fatalf("b.Lookup(7) = %v, %v", eb, ok)
	}
	// A miss in one slice never leaks into the other's rows.
	if _, ok := b.Lookup(9); ok {
		t.Fatal("b.Lookup(9) hit; want miss")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Disjoint priority bands.
	aLo, aHi := a.Band()
	bLo, bHi := b.Band()
	if aHi > bLo && bHi > aLo {
		t.Fatalf("bands overlap: a [%d,%d) b [%d,%d)", aLo, aHi, bLo, bHi)
	}
}

func TestSliceUnusedOperandFieldsWildcarded(t *testing.T) {
	p := mustPartition(t, 8, 8, 8)
	s, err := p.Open("unary", []int{8}, 8)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.ApplyRowsAtomic([]tcam.Row{row(3, uint64(9))}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if e, ok := s.Lookup(3); !ok || e.Data != uint64(9) {
		t.Fatalf("Lookup(3) = %v, %v", e, ok)
	}
	res := s.LookupSingleBatch([]uint64{3, 4}, nil)
	if res[0] == nil || res[0].Data != uint64(9) || res[1] != nil {
		t.Fatalf("LookupSingleBatch = %v", res)
	}
}

// TestSliceMatchesPrivateTable drives a slice and a private table through
// identical randomized reconciliation sequences and demands bit-identical
// fingerprints, lengths, and write counts — the store-level half of the
// differential guarantee (the system-level half lives in internal/core).
func TestSliceMatchesPrivateTable(t *testing.T) {
	p := mustPartition(t, 64, 8, 8)
	s, err := p.Open("x", []int{8}, 48)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// An unrelated tenant churns the same physical table throughout.
	noise, err := p.Open("noise", []int{8}, 16)
	if err != nil {
		t.Fatalf("Open noise: %v", err)
	}
	mirror := tcam.MustNew("mirror", 48, 8)

	rng := rand.New(rand.NewSource(11))
	pop := func(max int) []tcam.Row {
		n := rng.Intn(max)
		rows := make([]tcam.Row, 0, n)
		seen := map[uint64]bool{}
		for len(rows) < n {
			v := uint64(rng.Intn(64))
			if seen[v] {
				continue
			}
			seen[v] = true
			rows = append(rows, row(v, v*3))
		}
		return rows
	}
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			if _, err := noise.ApplyRowsAtomic(pop(16)); err != nil {
				t.Fatalf("step %d: noise commit: %v", i, err)
			}
		}
		rows := pop(20)
		w1, err1 := s.ApplyRowsAtomic(rows)
		w2, err2 := mirror.ApplyRowsAtomic(rows)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: slice err %v, mirror err %v", i, err1, err2)
		}
		if w1 != w2 {
			t.Fatalf("step %d: slice writes %d, mirror writes %d", i, w1, w2)
		}
		if s.Fingerprint() != mirror.Fingerprint() {
			t.Fatalf("step %d: fingerprints diverge\nslice:\n%s\nmirror:\n%s", i, s.Fingerprint(), mirror.Fingerprint())
		}
		if s.Len() != mirror.Len() {
			t.Fatalf("step %d: len %d vs %d", i, s.Len(), mirror.Len())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestSliceApplyDeltaMatchesPrivateTable(t *testing.T) {
	p := mustPartition(t, 32, 8, 8)
	s, err := p.Open("x", []int{8}, 32)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mirror := tcam.MustNew("mirror", 32, 8)
	seed := []tcam.Row{row(1, "a"), row(2, "b"), row(3, "c")}
	if _, err := s.ApplyRowsAtomic(seed); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.ApplyRowsAtomic(seed); err != nil {
		t.Fatal(err)
	}
	up := []tcam.Row{row(2, "B"), row(4, "d")}
	del := []tcam.Row{row(1, nil)}
	w1, err1 := s.ApplyDelta(up, del)
	w2, err2 := mirror.ApplyDelta(up, del)
	if err1 != nil || err2 != nil {
		t.Fatalf("deltas: %v, %v", err1, err2)
	}
	if w1 != w2 {
		t.Fatalf("writes %d vs %d", w1, w2)
	}
	if s.Fingerprint() != mirror.Fingerprint() {
		t.Fatalf("fingerprints diverge")
	}
	// Conflicting delete fails identically and leaves both unchanged.
	_, err1 = s.ApplyDelta(nil, []tcam.Row{row(9, nil)})
	_, err2 = mirror.ApplyDelta(nil, []tcam.Row{row(9, nil)})
	if !errors.Is(err1, tcam.ErrDeltaConflict) || !errors.Is(err2, tcam.ErrDeltaConflict) {
		t.Fatalf("conflict errors: %v, %v", err1, err2)
	}
	if s.Fingerprint() != mirror.Fingerprint() {
		t.Fatalf("fingerprints diverge after failed delta")
	}
}

func TestQuotaLedgerShrinkBeforeGrow(t *testing.T) {
	p := mustPartition(t, 10, 8, 8)
	a, err := p.Open("a", []int{8}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("b", []int{8}, 4); err != nil {
		t.Fatal(err)
	}
	rows := make([]tcam.Row, 6)
	for i := range rows {
		rows[i] = row(uint64(i), i)
	}
	if _, err := a.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	// Shrink a's quota: accepted immediately, but its 6 installed entries
	// stay reserved, so b cannot grow yet.
	if err := p.SetQuota("a", 2); err != nil {
		t.Fatalf("shrink a: %v", err)
	}
	if err := p.SetQuota("b", 8); !errors.Is(err, ErrQuota) {
		t.Fatalf("premature grow of b = %v, want ErrQuota", err)
	}
	// a commits within its new quota, releasing the entries…
	if _, err := a.ApplyRowsAtomic(rows[:2]); err != nil {
		t.Fatalf("a recommit: %v", err)
	}
	// …and the grow succeeds.
	if err := p.SetQuota("b", 8); err != nil {
		t.Fatalf("grow b after release: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceOverQuotaReportsHeadroom(t *testing.T) {
	p := mustPartition(t, 16, 8, 8)
	s, err := p.Open("a", []int{8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyRowsAtomic([]tcam.Row{row(1, 1), row(2, 2)}); err != nil {
		t.Fatal(err)
	}
	rows := make([]tcam.Row, 5)
	for i := range rows {
		rows[i] = row(uint64(i), i)
	}
	_, err = s.ApplyRowsAtomic(rows)
	var ce *tcam.CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("over-quota commit error = %v, want CapacityError", err)
	}
	if !errors.Is(err, tcam.ErrCapacity) {
		t.Fatalf("CapacityError does not unwrap to ErrCapacity")
	}
	if ce.Headroom() != 1 || ce.Requested != 5 || ce.Capacity != 3 {
		t.Fatalf("CapacityError = %+v (headroom %d)", ce, ce.Headroom())
	}
	// The failed commit left the slice and the physical table untouched.
	if s.Len() != 2 {
		t.Fatalf("slice len = %d after refused commit", s.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceScopedWriteHooks(t *testing.T) {
	p := mustPartition(t, 16, 8, 8)
	a, err := p.Open("a", []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open("b", []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var aOps, global int
	a.SetWriteHook(func(tcam.WriteOp) error { aOps++; return nil })
	p.SetWriteHook(func(tcam.WriteOp) error { global++; return nil })
	if _, err := a.ApplyRowsAtomic([]tcam.Row{row(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyRowsAtomic([]tcam.Row{row(1, 1), row(2, 2)}); err != nil {
		t.Fatal(err)
	}
	if aOps != 1 {
		t.Fatalf("a's hook saw %d ops, want 1 (b's commits must not reach it)", aOps)
	}
	if global != 3 {
		t.Fatalf("global hook saw %d ops, want 3", global)
	}
	// A slice-scoped failure rolls back only that slice's commit.
	a.SetWriteHook(func(tcam.WriteOp) error { return errors.New("boom") })
	if _, err := a.ApplyRowsAtomic([]tcam.Row{row(5, 5)}); err == nil {
		t.Fatal("faulted commit succeeded")
	}
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("post-fault lens a=%d b=%d", a.Len(), b.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// fakeMember is a Member whose populate is simulated by setting installed
// size = budget at the next "round". Its pressure decays hyperbolically with
// budget (mass/budget), the shape a mass-proportional allocator produces, so
// the arbiter's marginal-gain waterfill has a real gradient to follow.
type fakeMember struct {
	name   string
	p      *Partition
	s      *Slice
	mass   float64
	budget int
}

func (f *fakeMember) TenantName() string { return f.name }
func (f *fakeMember) Budget() int        { return f.budget }
func (f *fakeMember) SetBudget(n int) error {
	if err := f.p.SetQuota(f.name, n); err != nil {
		return err
	}
	f.budget = n
	return nil
}
func (f *fakeMember) Pressure(budget int) (Signal, error) {
	p := f.mass / float64(budget)
	return Signal{Pressure: p, Marginal: p}, nil
}

func (f *fakeMember) commit(t *testing.T) {
	t.Helper()
	rows := make([]tcam.Row, f.budget)
	for i := range rows {
		rows[i] = row(uint64(i), i)
	}
	if _, err := f.s.ApplyRowsAtomic(rows); err != nil {
		t.Fatalf("%s commit: %v", f.name, err)
	}
}

func TestArbiterMovesBudgetTowardPressure(t *testing.T) {
	p := mustPartition(t, 96, 8, 8)
	mk := func(name string, quota int, mass float64) *fakeMember {
		s, err := p.Open(name, []int{8}, quota)
		if err != nil {
			t.Fatal(err)
		}
		return &fakeMember{name: name, p: p, s: s, mass: mass, budget: quota}
	}
	hot := mk("hot", 32, 900)
	warm := mk("warm", 32, 90)
	cold := mk("cold", 32, 10)
	members := []Member{hot, warm, cold}
	arb := NewArbiter(p, ArbiterConfig{Every: 2, Floor: 8})

	for round := 1; round <= 8; round++ {
		for _, m := range []*fakeMember{hot, warm, cold} {
			m.commit(t)
		}
		rep, err := arb.RoundDone(members)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Rebalanced && rep.Pressures["hot"].Pressure <= rep.Pressures["cold"].Pressure {
			t.Fatalf("round %d: pressures = %v", round, rep.Pressures)
		}
	}
	if hot.budget <= 32 {
		t.Fatalf("hot tenant budget = %d, want growth above 32", hot.budget)
	}
	if cold.budget >= 32 {
		t.Fatalf("cold tenant budget = %d, want shrink below 32", cold.budget)
	}
	if cold.budget < 8 {
		t.Fatalf("cold tenant budget = %d violates floor 8", cold.budget)
	}
	if total := hot.budget + warm.budget + cold.budget; total > 96 {
		t.Fatalf("budgets sum to %d > 96", total)
	}
}

func TestArbiterDisabledIsStatic(t *testing.T) {
	p := mustPartition(t, 48, 8, 8)
	a, err := p.Open("a", []int{8}, 24)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	m := &fakeMember{name: "a", p: p, s: a, mass: 100, budget: 24}
	arb := NewArbiter(p, ArbiterConfig{Every: 0})
	for i := 0; i < 5; i++ {
		rep, err := arb.RoundDone([]Member{m})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rebalanced || len(rep.Moves) != 0 {
			t.Fatalf("static arbiter rebalanced: %+v", rep)
		}
	}
	if m.budget != 24 {
		t.Fatalf("budget drifted to %d under disabled arbiter", m.budget)
	}
}

func TestOpenRejectsOversubscription(t *testing.T) {
	p := mustPartition(t, 10, 8, 8)
	if _, err := p.Open("a", []int{8}, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("b", []int{8}, 6); !errors.Is(err, ErrQuota) {
		t.Fatalf("oversubscribing Open = %v, want ErrQuota", err)
	}
	if _, err := p.Open("a", []int{8}, 2); !errors.Is(err, ErrTenant) {
		t.Fatalf("duplicate Open = %v, want ErrTenant", err)
	}
}

func TestBinarySlice(t *testing.T) {
	p := mustPartition(t, 16, 8, 8)
	s, err := p.Open("mul", []int{8, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := tcam.Row{Fields: []tcam.Field{{Value: 3, Mask: 0xff}, {Value: 4, Mask: 0xff}}, Data: uint64(12)}
	if _, err := s.ApplyRowsAtomic([]tcam.Row{r}); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Lookup(3, 4); !ok || e.Data != uint64(12) {
		t.Fatalf("Lookup(3,4) = %v, %v", e, ok)
	}
	if _, ok := s.Lookup(4, 3); ok {
		t.Fatal("Lookup(4,3) hit")
	}
	res := s.LookupBatch([][]uint64{{3, 4}, {0, 0}})
	if res[0] == nil || res[1] != nil {
		t.Fatalf("LookupBatch = %v", res)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceFingerprintMatchesRowKey(t *testing.T) {
	// The slice fingerprint must be byte-identical to a private table's for
	// the same rows — the differential tests depend on it.
	rows := []tcam.Row{row(1, uint64(10)), row(250, uint64(20))}
	p := mustPartition(t, 8, 8, 8)
	s, err := p.Open("a", []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	mirror := tcam.MustNew("m", 8, 8)
	if _, err := s.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != mirror.Fingerprint() {
		t.Fatalf("fingerprint mismatch:\n%q\nvs\n%q", s.Fingerprint(), mirror.Fingerprint())
	}
	if s.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
}
