package tenant

import "testing"

// zeroMember reports no pressure at any budget — an idle tenant.
type zeroMember struct{ fakeMember }

func (z *zeroMember) Pressure(int) (Signal, error) { return Signal{}, nil }

func openMember(t *testing.T, p *Partition, name string, quota int, mass float64) *fakeMember {
	t.Helper()
	s, err := p.Open(name, []int{8}, quota)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeMember{name: name, p: p, s: s, mass: mass, budget: quota}
}

// TestArbiterBudgetBelowFloors pins the small-partition edge: when the total
// budget cannot honour the floor for every member, a rebalance must keep the
// current split untouched instead of driving allocations to zero or negative.
func TestArbiterBudgetBelowFloors(t *testing.T) {
	p := mustPartition(t, 12, 8, 8)
	a := openMember(t, p, "a", 6, 900)
	b := openMember(t, p, "b", 6, 10)
	arb := NewArbiter(p, ArbiterConfig{Every: 1, Floor: 8})
	for round := 0; round < 4; round++ {
		rep, err := arb.RoundDone([]Member{a, b})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(rep.Moves) != 0 {
			t.Fatalf("round %d moved budget with total 12 < 2×floor 8: %+v", round, rep.Moves)
		}
	}
	if a.budget != 6 || b.budget != 6 {
		t.Fatalf("budgets drifted to %d/%d under an unsatisfiable floor", a.budget, b.budget)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestArbiterAllZeroPressures: idle tenants give the waterfill no gradient.
// The rebalance must terminate, keep the budget fully allocated, and not
// thrash the (already fair) split.
func TestArbiterAllZeroPressures(t *testing.T) {
	p := mustPartition(t, 64, 8, 8)
	a := &zeroMember{*openMember(t, p, "a", 32, 0)}
	b := &zeroMember{*openMember(t, p, "b", 32, 0)}
	arb := NewArbiter(p, ArbiterConfig{Every: 1, Floor: 8})
	for round := 0; round < 3; round++ {
		rep, err := arb.RoundDone([]Member{a, b})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !rep.Rebalanced {
			t.Fatalf("round %d did not rebalance with Every=1", round)
		}
		if len(rep.Moves) != 0 {
			t.Fatalf("round %d reshuffled idle tenants: %+v", round, rep.Moves)
		}
	}
	if a.budget+b.budget != 64 {
		t.Fatalf("budgets sum to %d, want 64", a.budget+b.budget)
	}
}

// TestArbiterSingleMember: with one tenant there is nobody to take budget
// from or give it to; every rebalance must terminate with the budget intact.
func TestArbiterSingleMember(t *testing.T) {
	p := mustPartition(t, 48, 8, 8)
	m := openMember(t, p, "only", 48, 500)
	arb := NewArbiter(p, ArbiterConfig{Every: 1})
	for round := 0; round < 5; round++ {
		rep, err := arb.RoundDone([]Member{m})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(rep.Moves) != 0 {
			t.Fatalf("round %d moved the sole tenant's budget: %+v", round, rep.Moves)
		}
	}
	if m.budget != 48 {
		t.Fatalf("sole tenant budget drifted to %d", m.budget)
	}
}

// TestArbiterNeverGrantsBelowMinMove: settle must not dribble sub-hysteresis
// grants when the freed headroom trickles in below MinMove.
func TestArbiterNeverGrantsBelowMinMove(t *testing.T) {
	p := mustPartition(t, 64, 8, 8)
	hot := openMember(t, p, "hot", 32, 900)
	cold := openMember(t, p, "cold", 32, 1)
	const minMove = 4
	arb := NewArbiter(p, ArbiterConfig{Every: 1, Floor: 8, MinMove: minMove})
	for round := 0; round < 8; round++ {
		for _, m := range []*fakeMember{hot, cold} {
			m.commit(t)
		}
		rep, err := arb.RoundDone([]Member{hot, cold})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, mv := range rep.Moves {
			if d := mv.To - mv.From; d > -minMove && d < minMove {
				t.Fatalf("round %d: move %+v smaller than MinMove %d", round, mv, minMove)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if hot.budget <= 32 {
		t.Fatalf("hot budget = %d, want growth despite hysteresis", hot.budget)
	}
}

// TestArbiterNegativeConfigClamped: negative knobs behave as unset, not as
// licences for negative floors or reversed damping.
func TestArbiterNegativeConfigClamped(t *testing.T) {
	cfg := ArbiterConfig{Every: 1, Floor: -3, MaxMoveFrac: -0.5, MinMove: -2}.withDefaults()
	if cfg.Floor != 8 || cfg.MaxMoveFrac != 0.25 || cfg.MinMove != 2 {
		t.Fatalf("withDefaults() = %+v, want clamped defaults", cfg)
	}

	p := mustPartition(t, 64, 8, 8)
	hot := openMember(t, p, "hot", 32, 900)
	cold := openMember(t, p, "cold", 32, 1)
	arb := NewArbiter(p, ArbiterConfig{Every: 1, Floor: -3, MaxMoveFrac: -0.5, MinMove: -2})
	for round := 0; round < 6; round++ {
		for _, m := range []*fakeMember{hot, cold} {
			m.commit(t)
		}
		if _, err := arb.RoundDone([]Member{hot, cold}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if hot.budget < 1 || cold.budget < 1 {
			t.Fatalf("round %d: budgets %d/%d went non-positive", round, hot.budget, cold.budget)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if cold.budget < 8 {
		t.Fatalf("cold budget %d fell below the clamped floor 8", cold.budget)
	}
}
