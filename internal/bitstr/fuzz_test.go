package bitstr

import "testing"

// FuzzParse checks that Parse never panics and that accepted inputs
// round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"01x", "xxx", "0000", "1", "x", "01x0", "2ab", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if q != p {
			t.Fatalf("round-trip mismatch: %q -> %v -> %v", s, p, q)
		}
	})
}

// FuzzCoverRange checks that range covers always tile exactly [lo, hi].
func FuzzCoverRange(f *testing.F) {
	f.Add(uint64(0), uint64(7), 3)
	f.Add(uint64(1), uint64(6), 3)
	f.Add(uint64(100), uint64(100000), 20)
	f.Fuzz(func(t *testing.T, lo, hi uint64, width int) {
		if width < 1 || width > 64 {
			return
		}
		m := mask(width)
		lo &= m
		hi &= m
		if lo > hi {
			lo, hi = hi, lo
		}
		ps, err := CoverRange(lo, hi, width)
		if err != nil {
			t.Fatalf("CoverRange(%d, %d, %d): %v", lo, hi, width, err)
		}
		next := lo
		for i, p := range ps {
			if p.Lo() != next {
				t.Fatalf("gap at %d (prefix %d = %v)", next, i, p)
			}
			if p.Hi() == ^uint64(0) && i != len(ps)-1 {
				t.Fatalf("top-covering prefix not last")
			}
			next = p.Hi() + 1
		}
		if ps[len(ps)-1].Hi() != hi {
			t.Fatalf("cover ends at %d, want %d", ps[len(ps)-1].Hi(), hi)
		}
	})
}
