// Package bitstr implements the wildcard bit-string (ternary prefix) algebra
// that underlies every TCAM population scheme in ADA.
//
// A Prefix represents a TCAM match pattern of the form used throughout the
// paper: a run of significant (exactly matched) most-significant bits followed
// by don't-care bits, e.g. "01x" for 3-bit operands. Such a pattern matches a
// contiguous, power-of-two-sized, aligned interval of operand values. The
// package provides construction, containment, splitting/merging (trie
// navigation), representative selection, minimal range covers, and parsing of
// the human-readable "01x" notation.
package bitstr

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxWidth is the widest operand supported, in bits. Operands are held in
// uint64 values; 64-bit operands are fully supported.
const MaxWidth = 64

var (
	// ErrWidth reports an operand width outside [1, MaxWidth].
	ErrWidth = errors.New("bitstr: width must be in [1, 64]")
	// ErrBits reports a significant-bit count outside [0, width].
	ErrBits = errors.New("bitstr: significant bits must be in [0, width]")
	// ErrValue reports a value that does not fit in the operand width.
	ErrValue = errors.New("bitstr: value does not fit in width")
	// ErrNoParent reports Parent/Sibling on a width-0 (root) prefix.
	ErrNoParent = errors.New("bitstr: root prefix has no parent")
	// ErrNoChild reports Left/Right on a fully-specified prefix.
	ErrNoChild = errors.New("bitstr: fully specified prefix has no children")
	// ErrRange reports an invalid [lo, hi] range.
	ErrRange = errors.New("bitstr: invalid range")
)

// Prefix is a ternary match pattern: the top Bits bits of a Width-bit operand
// must equal the top Bits bits of Value; the remaining Width-Bits low bits are
// wildcards. The zero Prefix is invalid; construct via New, MustNew, Root, or
// Parse.
type Prefix struct {
	value uint64 // canonical: low (width-bits) bits are zero
	bits  uint8  // number of significant (matched) bits
	width uint8  // operand width in bits
}

// mask returns a mask with the low n bits set, handling n == 64.
func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// New constructs a Prefix over width-bit operands whose top bits significant
// bits equal those of value. Low wildcard bits of value are ignored
// (canonicalised to zero).
func New(value uint64, sigBits, width int) (Prefix, error) {
	if width < 1 || width > MaxWidth {
		return Prefix{}, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	if sigBits < 0 || sigBits > width {
		return Prefix{}, fmt.Errorf("%w: got %d for width %d", ErrBits, sigBits, width)
	}
	if value&^mask(width) != 0 {
		return Prefix{}, fmt.Errorf("%w: value %#x, width %d", ErrValue, value, width)
	}
	wild := width - sigBits
	return Prefix{value: value &^ mask(wild), bits: uint8(sigBits), width: uint8(width)}, nil
}

// MustNew is New but panics on error. Intended for constants and tests.
func MustNew(value uint64, sigBits, width int) Prefix {
	p, err := New(value, sigBits, width)
	if err != nil {
		panic(err)
	}
	return p
}

// Root returns the all-wildcard prefix covering the whole width-bit domain.
func Root(width int) (Prefix, error) {
	return New(0, 0, width)
}

// Exact returns the fully-specified prefix matching exactly value.
func Exact(value uint64, width int) (Prefix, error) {
	return New(value, width, width)
}

// Value returns the canonical match value (wildcard bits zero).
func (p Prefix) Value() uint64 { return p.value }

// Bits returns the number of significant bits.
func (p Prefix) Bits() int { return int(p.bits) }

// Width returns the operand width in bits.
func (p Prefix) Width() int { return int(p.width) }

// WildBits returns the number of wildcard (don't-care) bits.
func (p Prefix) WildBits() int { return int(p.width - p.bits) }

// IsValid reports whether p was constructed by this package (width >= 1).
func (p Prefix) IsValid() bool { return p.width >= 1 && p.bits <= p.width }

// Mask returns the ternary mask: 1 bits are matched, 0 bits are wildcards.
func (p Prefix) Mask() uint64 {
	return mask(int(p.width)) &^ mask(p.WildBits())
}

// Lo returns the smallest operand value matched by p.
func (p Prefix) Lo() uint64 { return p.value }

// Hi returns the largest operand value matched by p.
func (p Prefix) Hi() uint64 { return p.value | mask(p.WildBits()) }

// Size returns the number of operand values matched by p. For the 64-bit
// all-wildcard prefix the true count 2^64 does not fit in uint64; Size
// saturates to math.MaxUint64 in that single case.
func (p Prefix) Size() uint64 {
	if p.WildBits() >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << uint(p.WildBits())
}

// Midpoint returns the midpoint of the covered interval, the paper's
// median-of-range representative (used by Nimble [10] and §II-A).
func (p Prefix) Midpoint() uint64 {
	lo, hi := p.Lo(), p.Hi()
	return lo + (hi-lo)/2
}

// GeoMean returns the integer geometric mean of the covered interval,
// sqrt(lo*hi) computed without overflow. For lo == 0 it returns the geometric
// mean of [1, hi] (zero would collapse the product). This representative
// minimises multiplicative error and is offered as an ablation of the paper's
// midpoint choice.
func (p Prefix) GeoMean() uint64 {
	lo, hi := p.Lo(), p.Hi()
	if lo == 0 {
		lo = 1
	}
	if hi == 0 {
		return 0
	}
	return isqrtMul(lo, hi)
}

// isqrtMul returns floor(sqrt(a*b)) without overflowing uint64.
func isqrtMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return isqrt128(hi, lo)
}

// isqrt128 returns floor(sqrt(hi:lo)) for a 128-bit radicand.
func isqrt128(hi, lo uint64) uint64 {
	if hi == 0 {
		return isqrt64(lo)
	}
	// Newton's iteration seeded above the true root.
	shift := uint((128 - bits.LeadingZeros64(hi) + 1) / 2)
	x := uint64(1) << shift
	for {
		// y = (x + (hi:lo)/x) / 2, using 128/64 division.
		q, _ := bits.Div64(hi%x, lo, x) // safe: hi%x < x
		// (hi:lo)/x = (hi/x)<<64 + q approximately; hi/x must be 0 for q to be
		// the full quotient, which holds once x > hi. Seed guarantees x^2 >=
		// hi:lo hence x > sqrt >= 2^32 > hi when hi < 2^64... guard explicitly:
		if hi/x != 0 {
			x <<= 1
			continue
		}
		y := (x + q) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

// isqrt64 returns floor(sqrt(v)).
func isqrt64(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	x := uint64(1) << uint((bits.Len64(v)+1)/2)
	for {
		y := (x + v/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

// Contains reports whether p matches operand value v.
func (p Prefix) Contains(v uint64) bool {
	return v&p.Mask() == p.value
}

// ContainsPrefix reports whether every value matched by q is matched by p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return p.width == q.width && p.bits <= q.bits && q.value&p.Mask() == p.value
}

// Overlaps reports whether p and q match at least one common value.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.width != q.width {
		return false
	}
	m := p.Mask() & q.Mask()
	return p.value&m == q.value&m
}

// Left returns the child prefix with the next bit fixed to 0.
func (p Prefix) Left() (Prefix, error) {
	if p.bits == p.width {
		return Prefix{}, ErrNoChild
	}
	return Prefix{value: p.value, bits: p.bits + 1, width: p.width}, nil
}

// Right returns the child prefix with the next bit fixed to 1.
func (p Prefix) Right() (Prefix, error) {
	if p.bits == p.width {
		return Prefix{}, ErrNoChild
	}
	bit := uint64(1) << uint(p.WildBits()-1)
	return Prefix{value: p.value | bit, bits: p.bits + 1, width: p.width}, nil
}

// Parent returns the prefix one level up (one more wildcard bit).
func (p Prefix) Parent() (Prefix, error) {
	if p.bits == 0 {
		return Prefix{}, ErrNoParent
	}
	wild := p.WildBits()
	bit := uint64(1) << uint(wild)
	return Prefix{value: p.value &^ bit, bits: p.bits - 1, width: p.width}, nil
}

// Sibling returns the other child of p's parent.
func (p Prefix) Sibling() (Prefix, error) {
	if p.bits == 0 {
		return Prefix{}, ErrNoParent
	}
	bit := uint64(1) << uint(p.WildBits())
	return Prefix{value: p.value ^ bit, bits: p.bits, width: p.width}, nil
}

// IsLeftChild reports whether p is the 0-branch of its parent. It returns
// false for the root.
func (p Prefix) IsLeftChild() bool {
	if p.bits == 0 {
		return false
	}
	return p.value&(uint64(1)<<uint(p.WildBits())) == 0
}

// Compare orders prefixes by their low bound, breaking ties by more
// significant bits first (so a parent sorts after its left child's exact
// position but before disjoint successors). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Lo() < q.Lo():
		return -1
	case p.Lo() > q.Lo():
		return 1
	case p.bits > q.bits:
		return -1
	case p.bits < q.bits:
		return 1
	default:
		return 0
	}
}

// String renders p in the paper's notation, e.g. "01x" for width 3, bits 2.
func (p Prefix) String() string {
	var b strings.Builder
	b.Grow(int(p.width))
	for i := int(p.width) - 1; i >= 0; i-- {
		if int(p.width)-1-i < int(p.bits) {
			if p.value&(uint64(1)<<uint(i)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		} else {
			b.WriteByte('x')
		}
	}
	return b.String()
}

// Parse reads the "01x" notation produced by String. Wildcards must be a
// suffix (prefix patterns only), matching the paper's 0^p 1 (0|1)^s x^r form.
func Parse(s string) (Prefix, error) {
	width := len(s)
	if width < 1 || width > MaxWidth {
		return Prefix{}, fmt.Errorf("%w: %q", ErrWidth, s)
	}
	var value uint64
	sig := 0
	seenWild := false
	for i, c := range s {
		switch c {
		case '0', '1':
			if seenWild {
				return Prefix{}, fmt.Errorf("bitstr: parse %q: significant bit after wildcard at position %d", s, i)
			}
			value <<= 1
			if c == '1' {
				value |= 1
			}
			sig++
		case 'x', 'X', '*':
			seenWild = true
			value <<= 1
		default:
			return Prefix{}, fmt.Errorf("bitstr: parse %q: invalid character %q", s, c)
		}
	}
	return New(value, sig, width)
}

// CoverRange returns the minimal ordered set of prefixes whose union is
// exactly the integer interval [lo, hi] over width-bit operands. This is the
// classic range-to-prefix expansion used when a bounded working range must be
// installed into a TCAM.
func CoverRange(lo, hi uint64, width int) ([]Prefix, error) {
	if width < 1 || width > MaxWidth {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	if lo > hi {
		return nil, fmt.Errorf("%w: lo %d > hi %d", ErrRange, lo, hi)
	}
	if hi&^mask(width) != 0 {
		return nil, fmt.Errorf("%w: hi %d exceeds width %d", ErrValue, hi, width)
	}
	var out []Prefix
	for {
		// Largest aligned power-of-two block starting at lo that fits in
		// [lo, hi].
		blockBits := bits.TrailingZeros64(lo)
		if lo == 0 {
			blockBits = width
		}
		if blockBits > width {
			blockBits = width
		}
		// Shrink until block fits within hi.
		for blockBits > 0 {
			sz := uint64(1) << uint(blockBits)
			if blockBits < 64 && sz != 0 && lo+sz-1 <= hi && lo+sz-1 >= lo {
				break
			}
			if blockBits >= 64 && hi == ^uint64(0) && lo == 0 {
				break
			}
			blockBits--
		}
		p, err := New(lo, width-blockBits, width)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		end := p.Hi()
		if end >= hi {
			return out, nil
		}
		lo = end + 1
	}
}

// SortPrefixes orders prefixes by Compare (ascending low bound, deeper
// first on ties), in place.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// Partition reports whether the given prefixes exactly tile the interval
// [0, 2^width) with no gaps or overlaps. All prefixes must share one width.
// An empty slice is not a partition.
func Partition(ps []Prefix) bool {
	if len(ps) == 0 {
		return false
	}
	width := ps[0].Width()
	sorted := make([]Prefix, len(ps))
	copy(sorted, ps)
	SortPrefixes(sorted)
	var next uint64
	for i, p := range sorted {
		if p.Width() != width {
			return false
		}
		if p.Lo() != next {
			return false
		}
		hi := p.Hi()
		if i == len(sorted)-1 {
			return hi == mask(width)
		}
		if hi == ^uint64(0) {
			return false // covers the top but entries remain
		}
		next = hi + 1
	}
	return false
}
