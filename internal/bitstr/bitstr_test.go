package bitstr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		value   uint64
		bits    int
		width   int
		wantErr error
	}{
		{name: "ok small", value: 0b010, bits: 2, width: 3},
		{name: "ok full width", value: 0xffffffffffffffff, bits: 64, width: 64},
		{name: "ok zero bits", value: 0, bits: 0, width: 32},
		{name: "width too small", width: 0, wantErr: ErrWidth},
		{name: "width too large", width: 65, wantErr: ErrWidth},
		{name: "bits negative", bits: -1, width: 8, wantErr: ErrBits},
		{name: "bits exceed width", bits: 9, width: 8, wantErr: ErrBits},
		{name: "value exceeds width", value: 0x100, bits: 4, width: 8, wantErr: ErrValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.value, tt.bits, tt.width)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("New() error = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("New() error = nil, want %v", tt.wantErr)
			}
		})
	}
}

func TestCanonicalisation(t *testing.T) {
	// Low wildcard bits must be zeroed.
	p := MustNew(0b0111, 2, 4) // only top two bits significant
	if p.Value() != 0b0100 {
		t.Errorf("Value() = %#b, want 0b0100", p.Value())
	}
	if got := p.String(); got != "01xx" {
		t.Errorf("String() = %q, want 01xx", got)
	}
}

func TestPaperBinExamples(t *testing.T) {
	// Figure 4a: 3-bit operands, bins 00x(0-1), 01x(2-3), 10x(4-5), 11x(6-7).
	tests := []struct {
		pattern string
		lo, hi  uint64
	}{
		{"00x", 0, 1},
		{"01x", 2, 3},
		{"10x", 4, 5},
		{"11x", 6, 7},
		// Figure 4b: 00x(0-1), 010(2), 011(3), 1xx(4-7).
		{"010", 2, 2},
		{"011", 3, 3},
		{"1xx", 4, 7},
	}
	for _, tt := range tests {
		t.Run(tt.pattern, func(t *testing.T) {
			p, err := Parse(tt.pattern)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.pattern, err)
			}
			if p.Lo() != tt.lo || p.Hi() != tt.hi {
				t.Errorf("range = [%d, %d], want [%d, %d]", p.Lo(), p.Hi(), tt.lo, tt.hi)
			}
			if got := p.String(); got != tt.pattern {
				t.Errorf("String() = %q, want %q", got, tt.pattern)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "x1", "01x0", "2xx", "0x1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestContains(t *testing.T) {
	p := MustNew(0b0100, 2, 4) // 01xx: 4..7
	for v := uint64(0); v < 16; v++ {
		want := v >= 4 && v <= 7
		if got := p.Contains(v); got != want {
			t.Errorf("Contains(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestChildrenAndParent(t *testing.T) {
	p := MustNew(0b0100, 2, 4) // 01xx
	l, err := p.Left()
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Right()
	if err != nil {
		t.Fatal(err)
	}
	if l.String() != "010x" || r.String() != "011x" {
		t.Fatalf("children = %q, %q; want 010x, 011x", l, r)
	}
	for _, c := range []Prefix{l, r} {
		parent, err := c.Parent()
		if err != nil {
			t.Fatal(err)
		}
		if parent != p {
			t.Errorf("Parent(%q) = %q, want %q", c, parent, p)
		}
	}
	sib, err := l.Sibling()
	if err != nil {
		t.Fatal(err)
	}
	if sib != r {
		t.Errorf("Sibling(%q) = %q, want %q", l, sib, r)
	}
	if !l.IsLeftChild() || r.IsLeftChild() {
		t.Error("IsLeftChild misclassified children")
	}

	full := MustNew(0b0101, 4, 4)
	if _, err := full.Left(); err == nil {
		t.Error("Left() on full prefix: want error")
	}
	root, _ := Root(4)
	if _, err := root.Parent(); err == nil {
		t.Error("Parent() on root: want error")
	}
	if root.IsLeftChild() {
		t.Error("root must not report IsLeftChild")
	}
}

func TestMidpoint(t *testing.T) {
	tests := []struct {
		pattern string
		want    uint64
	}{
		{"1xx", 5},   // 4..7 -> 5
		{"01x", 2},   // 2..3 -> 2
		{"010", 2},   // exact
		{"xxx", 3},   // 0..7 -> 3
		{"xxxx", 7},  // 0..15 -> 7
		{"1xxx", 11}, // 8..15 -> 11
	}
	for _, tt := range tests {
		p, err := Parse(tt.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Midpoint(); got != tt.want {
			t.Errorf("Midpoint(%q) = %d, want %d", tt.pattern, got, tt.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	p := MustNew(4, 64, 64) // exact 4
	if got := p.GeoMean(); got != 4 {
		t.Errorf("GeoMean exact = %d, want 4", got)
	}
	q := MustNew(8, 61, 64) // 8..15, sqrt(120) = 10
	if got := q.GeoMean(); got != 10 {
		t.Errorf("GeoMean(8..15) = %d, want 10", got)
	}
	r, _ := Root(8) // 0..255 -> sqrt(1*255)=15
	if got := r.GeoMean(); got != 15 {
		t.Errorf("GeoMean(0..255) = %d, want 15", got)
	}
}

func TestIsqrt(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 3, 4, 15, 16, 17, 1 << 32, math.MaxUint64} {
		got := isqrt64(v)
		if got*got > v {
			t.Errorf("isqrt64(%d) = %d: square exceeds radicand", v, got)
		}
		if got < math.MaxUint32 && (got+1)*(got+1) <= v {
			t.Errorf("isqrt64(%d) = %d: not the floor", v, got)
		}
	}
}

func TestCoverRange(t *testing.T) {
	tests := []struct {
		name   string
		lo, hi uint64
		width  int
		want   []string
	}{
		{name: "whole domain", lo: 0, hi: 7, width: 3, want: []string{"xxx"}},
		{name: "aligned block", lo: 4, hi: 7, width: 3, want: []string{"1xx"}},
		{name: "single value", lo: 5, hi: 5, width: 3, want: []string{"101"}},
		{name: "unaligned", lo: 1, hi: 6, width: 3, want: []string{"001", "01x", "10x", "110"}},
		{name: "paper working range", lo: 0, hi: 5, width: 3, want: []string{"0xx", "10x"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ps, err := CoverRange(tt.lo, tt.hi, tt.width)
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) != len(tt.want) {
				t.Fatalf("got %d prefixes %v, want %d", len(ps), ps, len(tt.want))
			}
			for i, p := range ps {
				if p.String() != tt.want[i] {
					t.Errorf("prefix %d = %q, want %q", i, p, tt.want[i])
				}
			}
		})
	}
	if _, err := CoverRange(5, 2, 8); err == nil {
		t.Error("CoverRange(5,2): want error")
	}
	if _, err := CoverRange(0, 256, 8); err == nil {
		t.Error("CoverRange hi out of width: want error")
	}
}

func TestCoverRangeFull64(t *testing.T) {
	ps, err := CoverRange(0, math.MaxUint64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Bits() != 0 {
		t.Fatalf("full 64-bit cover = %v, want single root", ps)
	}
}

func TestPartition(t *testing.T) {
	mk := func(ss ...string) []Prefix {
		ps := make([]Prefix, len(ss))
		for i, s := range ss {
			var err error
			ps[i], err = Parse(s)
			if err != nil {
				t.Fatal(err)
			}
		}
		return ps
	}
	if !Partition(mk("00x", "01x", "10x", "11x")) {
		t.Error("uniform bins must partition")
	}
	if !Partition(mk("00x", "010", "011", "1xx")) {
		t.Error("figure 4b bins must partition")
	}
	if Partition(mk("00x", "01x", "10x")) {
		t.Error("gap at top must not partition")
	}
	if Partition(mk("00x", "01x", "0xx", "1xx")) {
		t.Error("overlap must not partition")
	}
	if Partition(nil) {
		t.Error("empty set must not partition")
	}
}

func TestOverlapsAndContainsPrefix(t *testing.T) {
	a := MustNew(0b0100, 2, 4) // 01xx
	b := MustNew(0b0110, 3, 4) // 011x
	c := MustNew(0b1000, 2, 4) // 10xx
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
	if !a.ContainsPrefix(b) {
		t.Error("01xx must contain 011x")
	}
	if b.ContainsPrefix(a) {
		t.Error("011x must not contain 01xx")
	}
	w8, _ := Root(8)
	if a.Overlaps(w8) {
		t.Error("different widths must not overlap")
	}
}

// Property: for any prefix, splitting into children and re-merging returns the
// original, and the children exactly tile the parent.
func TestQuickChildrenTileParent(t *testing.T) {
	f := func(value uint64, bitsRaw, widthRaw uint8) bool {
		width := int(widthRaw%64) + 1
		sig := int(bitsRaw) % width // strictly less than width so children exist
		p, err := New(value&mask(width), sig, width)
		if err != nil {
			return false
		}
		l, err := p.Left()
		if err != nil {
			return false
		}
		r, err := p.Right()
		if err != nil {
			return false
		}
		if l.Lo() != p.Lo() || r.Hi() != p.Hi() {
			return false
		}
		if l.Hi()+1 != r.Lo() {
			return false
		}
		lp, err := l.Parent()
		if err != nil || lp != p {
			return false
		}
		rp, err := r.Parent()
		if err != nil || rp != p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: CoverRange output tiles exactly [lo, hi]: sorted, contiguous, in
// range, and minimal in the sense that no two adjacent prefixes are siblings.
func TestQuickCoverRangeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		width := 1 + rng.Intn(32)
		m := mask(width)
		a, b := rng.Uint64()&m, rng.Uint64()&m
		if a > b {
			a, b = b, a
		}
		ps, err := CoverRange(a, b, width)
		if err != nil {
			t.Fatalf("CoverRange(%d,%d,%d): %v", a, b, width, err)
		}
		next := a
		for j, p := range ps {
			if p.Lo() != next {
				t.Fatalf("cover gap at %d: prefix %d is %v", next, j, p)
			}
			next = p.Hi() + 1
			if j+1 < len(ps) {
				sib, err := p.Sibling()
				if err == nil && sib == ps[j+1] {
					t.Fatalf("cover not minimal: %v and %v are siblings", p, ps[j+1])
				}
			}
		}
		if ps[len(ps)-1].Hi() != b {
			t.Fatalf("cover ends at %d, want %d", ps[len(ps)-1].Hi(), b)
		}
	}
}

// Property: Parse(String(p)) == p.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(value uint64, bitsRaw, widthRaw uint8) bool {
		width := int(widthRaw%64) + 1
		sig := int(bitsRaw) % (width + 1)
		p, err := New(value&mask(width), sig, width)
		if err != nil {
			return false
		}
		q, err := Parse(p.String())
		if err != nil {
			return false
		}
		return q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Contains agrees with the [Lo, Hi] interval.
func TestQuickContainsMatchesInterval(t *testing.T) {
	f := func(value, probe uint64, bitsRaw, widthRaw uint8) bool {
		width := int(widthRaw%64) + 1
		sig := int(bitsRaw) % (width + 1)
		p, err := New(value&mask(width), sig, width)
		if err != nil {
			return false
		}
		v := probe & mask(width)
		return p.Contains(v) == (v >= p.Lo() && v <= p.Hi())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestSortPrefixes(t *testing.T) {
	ps := []Prefix{
		MustNew(0b1000, 2, 4),
		MustNew(0b0000, 2, 4),
		MustNew(0b0000, 0, 4),
		MustNew(0b0100, 2, 4),
	}
	SortPrefixes(ps)
	want := []string{"00xx", "xxxx", "01xx", "10xx"}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, p, want[i])
		}
	}
}

func TestSizeSaturation(t *testing.T) {
	root, _ := Root(64)
	if root.Size() != math.MaxUint64 {
		t.Error("64-bit root Size must saturate")
	}
	p := MustNew(0, 1, 64)
	if p.Size() != uint64(1)<<63 {
		t.Errorf("half-domain Size = %d", p.Size())
	}
}
