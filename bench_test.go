// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment and reports its
// headline quantities via b.ReportMetric, so `go test -bench=. -benchmem`
// doubles as the reproduction harness. cmd/adabench prints the full series.
package ada_test

import (
	"testing"

	"github.com/ada-repro/ada/internal/experiments"
	"github.com/ada-repro/ada/internal/netsim"
)

// BenchmarkFig1aQueueSizeCDF reproduces the §II-B motivation: queue sizes at
// an edge port are heavily skewed (<200 KB nearly all the time) under both
// Cubic and DCTCP.
func BenchmarkFig1aQueueSizeCDF(b *testing.B) {
	cfg := experiments.DefaultFig1aConfig()
	cfg.Duration = 10 * netsim.Millisecond
	var rows []experiments.Fig1aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig1a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FracBelow200KB*100, r.Protocol+"_below200KB_%")
	}
}

// BenchmarkFig1bInterArrivalCDF reproduces the narrow inter-arrival band
// (120–360 ns) under a rate limiter whose limit halves three times.
func BenchmarkFig1bInterArrivalCDF(b *testing.B) {
	var res experiments.Fig1bResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig1b(experiments.DefaultFig1bConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.P50)/float64(netsim.Nanosecond), "p50_gap_ns")
	b.ReportMetric(res.FracInBand*100, "in_band_%")
}

// BenchmarkFig1cRateTrace reproduces the two-valued rate-limit operand trace
// (94 → 47 Gbps).
func BenchmarkFig1cRateTrace(b *testing.B) {
	var points []experiments.Fig1cPoint
	for i := 0; i < b.N; i++ {
		points = experiments.RunFig1c(experiments.DefaultFig1cConfig())
	}
	b.ReportMetric(float64(experiments.Fig1cDistinctValues(points)), "distinct_operands")
}

// BenchmarkFig5Convergence reproduces Fig 5a–e: the binning trie converges
// to uniform, exponential, Fisher-F, and mixture distributions.
func BenchmarkFig5Convergence(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig5(experiments.DefaultFig5Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.TVFinal > worst {
			worst = r.TVFinal
		}
	}
	b.ReportMetric(worst, "worst_TV_converged")
}

// BenchmarkFig6AdaptiveIncrement reproduces Fig 6: starting from b = 1, the
// expansion rule grows the monitoring trie to match a tight Gaussian.
func BenchmarkFig6AdaptiveIncrement(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig6(experiments.DefaultFig6Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Bins), "final_bins")
	b.ReportMetric(last.TV, "final_TV")
}

// BenchmarkFig7aErrorVsSigBits reproduces Fig 7a: average error falls with
// the significant-bit count; G×G is the worst combination.
func BenchmarkFig7aErrorVsSigBits(b *testing.B) {
	cfg := experiments.DefaultFig7aConfig()
	cfg.Samples = 8000
	var rows []experiments.Fig7aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig7a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Errors["G(x)*G(y)"], "GxG_err%_s1")
	b.ReportMetric(last.Errors["G(x)*G(y)"], "GxG_err%_s8")
}

// BenchmarkFig7bTableSize reproduces Fig 7b: table size grows exponentially
// with significant bits.
func BenchmarkFig7bTableSize(b *testing.B) {
	var rows []experiments.Fig7bRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunFig7b([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.UnaryEntries), "unary_entries_s10")
}

// BenchmarkFig7cErrorPropagation reproduces Fig 7c: iterating x² amplifies
// lookup error by orders of magnitude more than iterating 2x.
func BenchmarkFig7cErrorPropagation(b *testing.B) {
	cfg := experiments.DefaultFig7cConfig()
	cfg.Seeds = 20
	cfg.AdaptRounds = 10
	var rows []experiments.Fig7cRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig7c(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MaxPct, r.Function+"_"+r.Scheme+"_peak_err%")
	}
}

// BenchmarkFig8NimbleThroughput reproduces Fig 8: Nimble with a frozen
// population breaks on the 24→12 Gbps change; with ADA it recovers.
func BenchmarkFig8NimbleThroughput(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig8(experiments.DefaultFig8Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Phase2AvgGbps, string(r.Variant)+"_phase2_Gbps")
	}
}

// BenchmarkFig9ControlPlaneDelay reproduces Fig 9: control-plane convergence
// delay grows with the calculation budget, ≈3.15 ms at 128 entries.
func BenchmarkFig9ControlPlaneDelay(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.Rounds = 6
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Delay.Seconds()*1000, "delay_ms_at_128")
}

// BenchmarkFig10ShortFlowFCT reproduces Fig 10: short-flow FCT for TCP, RCP
// and Nimble with ideal vs ADA arithmetic across load.
func BenchmarkFig10ShortFlowFCT(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.Loads = []float64{0.4}
	cfg.Duration = 10 * netsim.Millisecond
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ShortFCT.Mean.Seconds()*1e6, string(r.Scheme)+"_mean_FCT_us")
	}
}

// BenchmarkTable2ResourceUsage reproduces Table II: stage counts (2/2/3) and
// control-plane read/write rates for ADA(R), ADA(ΔT), ADA(ΔT, R).
func BenchmarkTable2ResourceUsage(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable2(experiments.DefaultTable2Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Stages), r.Variant+"_stages")
		b.ReportMetric(r.AvgReads, r.Variant+"_reads")
		b.ReportMetric(r.AvgWrites, r.Variant+"_writes")
	}
}

// BenchmarkExtXCPFCT runs the XCP extension (Table I's heaviest arithmetic
// consumer) with ideal vs ADA arithmetic.
func BenchmarkExtXCPFCT(b *testing.B) {
	cfg := experiments.DefaultExtXCPConfig()
	cfg.Duration = 8 * netsim.Millisecond
	var rows []experiments.ExtXCPRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExtXCP(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ShortFCT.Mean.Seconds()*1e6, r.Variant+"_mean_FCT_us")
	}
}
