// Ablation benchmarks for the design choices called out in DESIGN.md. Each
// benchmark runs the design variant and its alternative on the same
// workload and reports both headline metrics, so `go test -bench=Ablation`
// quantifies every choice.
package ada_test

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// trainedTrie returns a trie adapted to the given sampler.
func trainedTrie(b *testing.B, width, bins int, sampler *dist.IntSampler, rounds int) *trie.Trie {
	b.Helper()
	tr, err := trie.NewInitial(bins, width)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		tr.ResetHits()
		tr.RecordAll(sampler.Draw(2000))
		rebs := 0
		for ; rebs < 4 && tr.Rebalance(0.20); rebs++ {
		}
		// The controller's expansion fallback (§III-B2): grow when the
		// imbalance persists but Algorithm 2 has no mergeable pair left.
		if rebs < 4 && tr.Imbalance() >= 0.20 && tr.NumLeaves() < 2*bins {
			tr.Expand()
		}
	}
	tr.ResetHits()
	tr.RecordAll(sampler.Draw(10000))
	return tr
}

// BenchmarkAblationRepresentative compares the paper's midpoint
// representative against the geometric mean on a multiplicative operation
// over skewed operands (DESIGN.md decision 2).
func BenchmarkAblationRepresentative(b *testing.B) {
	// Heavy-tailed operands at a small budget: bins span whole octaves, so
	// the representative choice matters.
	const width, budget = 16, 12
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Exponential{Rate: 4, Scale: 1 << width}, Lo: 1, Hi: 1 << width},
		1<<width-1, 21)
	test := sampler.Draw(5000)
	var midErr, geoErr float64
	for i := 0; i < b.N; i++ {
		tr := trainedTrie(b, width, 12, sampler, 20)
		for _, rep := range []population.Representative{population.Midpoint, population.GeoMean} {
			entries, err := population.ADAUnary(tr, arith.OpSquare.Func(), budget, rep)
			if err != nil {
				b.Fatal(err)
			}
			engine, err := arith.NewUnaryEngine("abl", width, budget, entries)
			if err != nil {
				b.Fatal(err)
			}
			s := arith.MeasureUnary(engine.Eval, arith.OpSquare, test)
			if rep == population.Midpoint {
				midErr = s.AvgPercent()
			} else {
				geoErr = s.AvgPercent()
			}
		}
	}
	b.ReportMetric(midErr, "midpoint_err%")
	b.ReportMetric(geoErr, "geomean_err%")
}

// BenchmarkAblationJointSplit compares ADABinary's spread-proportional
// budget factoring against a fixed sqrt split on asymmetric operands — a
// near-constant divisor against a wide dividend (DESIGN.md decision 5).
func BenchmarkAblationJointSplit(b *testing.B) {
	const width, budget = 16, 128
	xs := dist.NewIntSampler(dist.Uniform{Lo: 0, Hi: 1 << width}, 1<<width-1, 31)
	ys := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 20, Sigma: 1}, Lo: 1, Hi: 1 << width},
		1<<width-1, 32)
	// Evaluate where the quotient is meaningful (small dividends make the
	// relative error of x/20 explode for every scheme and mask the split
	// effect).
	rawX, testY := xs.Draw(6000), ys.Draw(3000)
	testX := make([]uint64, 0, 3000)
	for _, x := range rawX {
		if x >= 1<<12 {
			testX = append(testX, x)
		}
		if len(testX) == 3000 {
			break
		}
	}
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		tx := trainedTrie(b, width, 12, xs, 15)
		ty := trainedTrie(b, width, 12, ys, 15)
		for _, variant := range []string{"adaptive", "fixed"} {
			var entries []population.BinaryEntry
			var err error
			if variant == "adaptive" {
				entries, err = population.ADABinary(tx, ty, arith.OpDiv.Func(), budget, population.Midpoint)
			} else {
				entries, err = population.ADABinaryFixedSplit(tx, ty, arith.OpDiv.Func(), budget, population.Midpoint)
			}
			if err != nil {
				b.Fatal(err)
			}
			engine, err := arith.NewBinaryEngine("abl", width, 0, entries)
			if err != nil {
				b.Fatal(err)
			}
			s := arith.MeasureBinary(engine.Eval, arith.OpDiv, testX, testY)
			if variant == "adaptive" {
				adaptive = s.AvgPercent()
			} else {
				fixed = s.AvgPercent()
			}
		}
	}
	b.ReportMetric(adaptive, "spread_split_err%")
	b.ReportMetric(fixed, "sqrt_split_err%")
}

// BenchmarkAblationHitDecay compares the paper's read-then-reset register
// handling against an EWMA decay after an abrupt distribution shift
// (DESIGN.md decision 4). Reset adapts faster; EWMA remembers longer.
func BenchmarkAblationHitDecay(b *testing.B) {
	const width, calcBudget = 16, 64
	var resetErr, ewmaErr float64
	for i := 0; i < b.N; i++ {
		for _, ewma := range []bool{false, true} {
			mon, err := monitor.New("abl", width, 0)
			if err != nil {
				b.Fatal(err)
			}
			cfg := controlplane.DefaultConfig(12, calcBudget)
			cfg.EWMADecay = ewma
			engine, err := arith.NewUnaryEngine("abl", width, calcBudget, nil)
			if err != nil {
				b.Fatal(err)
			}
			target := &unaryTargetForBench{engine: engine}
			ctl, err := controlplane.New(cfg, mon, target)
			if err != nil {
				b.Fatal(err)
			}
			before := dist.NewIntSampler(
				dist.Truncated{D: dist.Gaussian{Mu: 50000, Sigma: 500}, Lo: 0, Hi: 1 << width},
				1<<width-1, 41)
			after := dist.NewIntSampler(
				dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << width},
				1<<width-1, 42)
			for r := 0; r < 15; r++ {
				mon.ObserveAll(before.Draw(2000))
				if _, err := ctl.Round(); err != nil {
					b.Fatal(err)
				}
			}
			// Abrupt shift; a few rounds to re-adapt.
			for r := 0; r < 4; r++ {
				mon.ObserveAll(after.Draw(2000))
				if _, err := ctl.Round(); err != nil {
					b.Fatal(err)
				}
			}
			s := arith.MeasureUnary(engine.Eval, arith.OpSquare, after.Draw(4000))
			if ewma {
				ewmaErr = s.AvgPercent()
			} else {
				resetErr = s.AvgPercent()
			}
		}
	}
	b.ReportMetric(resetErr, "reset_err%_post_shift")
	b.ReportMetric(ewmaErr, "ewma_err%_post_shift")
}

type unaryTargetForBench struct {
	engine *arith.UnaryEngine
}

func (t *unaryTargetForBench) Populate(tr *trie.Trie, budget int) (int, int, error) {
	entries, err := population.ADAUnary(tr, arith.OpSquare.Func(), budget, population.Midpoint)
	if err != nil {
		return 0, 0, err
	}
	writes, err := t.engine.Reload(entries)
	return writes, len(entries), err
}

// BenchmarkAblationWritePolicy compares delta reconciliation (ApplyRows)
// against full table rewrites (ReplaceAll) across adaptation rounds — the
// reason Table II's write counts stay low.
func BenchmarkAblationWritePolicy(b *testing.B) {
	const width, budget = 16, 64
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 300}, Lo: 0, Hi: 1 << width},
		1<<width-1, 51)
	var deltaWrites, fullWrites float64
	for i := 0; i < b.N; i++ {
		tr, err := trie.NewInitial(12, width)
		if err != nil {
			b.Fatal(err)
		}
		delta := tcam.MustNew("delta", 0, width)
		full := tcam.MustNew("full", 0, width)
		var dw, fw int
		for r := 0; r < 20; r++ {
			tr.ResetHits()
			tr.RecordAll(sampler.Draw(2000))
			for j := 0; j < 4 && tr.Rebalance(0.20); j++ {
			}
			entries, err := population.ADAUnary(tr, arith.OpSquare.Func(), budget, population.Midpoint)
			if err != nil {
				b.Fatal(err)
			}
			rows := make([]tcam.Row, len(entries))
			for k, e := range entries {
				rows[k] = tcam.RowFromPrefix(e.P, e.Result)
			}
			w1, err := delta.ApplyRows(rows)
			if err != nil {
				b.Fatal(err)
			}
			w2, err := full.ReplaceAll(rows)
			if err != nil {
				b.Fatal(err)
			}
			dw += w1
			fw += w2
		}
		deltaWrites, fullWrites = float64(dw)/20, float64(fw)/20
	}
	b.ReportMetric(deltaWrites, "delta_writes_per_round")
	b.ReportMetric(fullWrites, "full_writes_per_round")
}

// BenchmarkAblationBalanceThreshold sweeps Algorithm 2's th_balance: a low
// threshold reshapes eagerly (more control-plane churn), a high one adapts
// sluggishly. The paper picks 0.20.
func BenchmarkAblationBalanceThreshold(b *testing.B) {
	// A mild skew (uniform background + one cluster) keeps the imbalance in
	// the 0.1–0.6 range where the threshold actually gates reshaping; a
	// hard point mass saturates imbalance at ~1 and every threshold fires.
	const width = 20
	mix, err := dist.NewMixture(
		dist.Component{D: dist.Uniform{Lo: 0, Hi: 1 << width}, Weight: 3},
		dist.Component{D: dist.Gaussian{Mu: 300000, Sigma: 20000}, Weight: 1},
	)
	if err != nil {
		b.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: mix, Lo: 0, Hi: 1 << width},
		1<<width-1, 61)
	thresholds := []float64{0.05, 0.20, 0.60}
	names := []string{"th0.05", "th0.20", "th0.60"}
	earlyDepth := make([]float64, len(thresholds))
	churn := make([]float64, len(thresholds))
	for i := 0; i < b.N; i++ {
		for ti, th := range thresholds {
			tr, err := trie.NewInitial(16, width)
			if err != nil {
				b.Fatal(err)
			}
			rebalances := 0
			for r := 0; r < 30; r++ {
				tr.ResetHits()
				tr.RecordAll(sampler.Draw(2000))
				for j := 0; j < 4 && tr.Rebalance(th); j++ {
					rebalances++
				}
				if r == 2 {
					earlyDepth[ti] = float64(tr.Depth())
				}
			}
			churn[ti] = float64(rebalances)
		}
	}
	for ti := range thresholds {
		b.ReportMetric(earlyDepth[ti], names[ti]+"_depth_after_3_rounds")
		b.ReportMetric(churn[ti], names[ti]+"_total_rebalances")
	}
}
